(* ADDs and the BFS depth-map application. *)

module A = Bdd.Add
module Tt = Logic.Truth_table

let aman = A.new_man ()
let man = Util.man

let gen_tt =
  QCheck2.Gen.(
    let* n = int_range 0 5 in
    let* seed = int_bound 0xFFFFF in
    return (n, seed))

let tt_of (n, seed) =
  let st = Random.State.make [| seed; n |] in
  Tt.create n (fun _ -> Random.State.bool st)

let of_bdd_semantics =
  Util.qtest ~count:200 "of_bdd maps onset/offset to high/low" gen_tt
    (fun desc ->
       let tt = tt_of desc in
       let f = Tt.to_bdd man tt in
       let a = A.of_bdd aman man f ~high:7 ~low:(-3) in
       List.for_all
         (fun m ->
            A.eval a (fun v -> (m lsr v) land 1 = 1)
            = if Tt.get tt m then 7 else -3)
         (List.init (Tt.points tt) Fun.id))

let apply2_pointwise =
  Util.qtest ~count:200 "apply2 is pointwise"
    QCheck2.Gen.(
      let* a = gen_tt in
      let* b = gen_tt in
      return (a, b))
    (fun (d1, d2) ->
       let n = max (fst d1) (fst d2) in
       let t1 = tt_of d1 and t2 = tt_of d2 in
       let a1 = A.of_bdd aman man (Tt.to_bdd man t1) ~high:3 ~low:1 in
       let a2 = A.of_bdd aman man (Tt.to_bdd man t2) ~high:5 ~low:2 in
       let sum = A.add aman a1 a2 in
       let mn = A.min2 aman a1 a2 in
       List.for_all
         (fun m ->
            let assign v = (m lsr v) land 1 = 1 in
            A.eval sum assign = A.eval a1 assign + A.eval a2 assign
            && A.eval mn assign = min (A.eval a1 assign) (A.eval a2 assign))
         (List.init (1 lsl n) Fun.id))

let canonicity =
  Util.qtest ~count:200 "equal maps share handles" gen_tt
    (fun desc ->
       let tt = tt_of desc in
       let f = Tt.to_bdd man tt in
       let a1 = A.of_bdd aman man f ~high:1 ~low:0 in
       (* same function built via apply on a trivially-rebuilt pair *)
       let a2 =
         A.apply2 aman max
           (A.of_bdd aman man f ~high:1 ~low:0)
           (A.const aman 0)
       in
       A.equal a1 a2)

let roundtrip_threshold =
  Util.qtest ~count:200 "to_bdd inverts of_bdd" gen_tt
    (fun desc ->
       let tt = tt_of desc in
       let f = Tt.to_bdd man tt in
       let a = A.of_bdd aman man f ~high:9 ~low:0 in
       Bdd.equal f (A.to_bdd aman a ~pred:(fun v -> v > 0) man))

let map_and_terminals () =
  let f = Bdd.dxor man (Bdd.ithvar man 0) (Bdd.ithvar man 1) in
  let a = A.of_bdd aman man f ~high:10 ~low:20 in
  Alcotest.(check (list int)) "terminals" [ 10; 20 ] (A.terminals aman a);
  Util.checki "min" 10 (A.min_value aman a);
  Util.checki "max" 20 (A.max_value aman a);
  let doubled = A.map aman (fun v -> 2 * v) a in
  Alcotest.(check (list int)) "mapped" [ 20; 40 ] (A.terminals aman doubled);
  (* map collapsing all values yields a constant *)
  let collapsed = A.map aman (fun _ -> 5) a in
  Util.checkb "constant" (A.value collapsed = Some 5)

(* depth maps *)

let depth_matches_explicit =
  Util.qtest ~count:15 "ADD depth map diameter = explicit BFS depth"
    QCheck2.Gen.(int_bound 3000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 5; inputs = 2; depth = 3; seed }
       in
       let man = Bdd.create () in
       let sym = Fsm.Symbolic.of_netlist man nl in
       let d = Fsm.Depth.compute sym in
       let explicit = Fsm.Explicit.reachable nl in
       d.Fsm.Depth.diameter = explicit.Fsm.Explicit.depth)

let counter_depths () =
  let man = Bdd.create () in
  let sym = Fsm.Symbolic.of_netlist man (Circuits.Counter.make ~width:4 ()) in
  let d = Fsm.Depth.compute sym in
  Util.checki "diameter 15" 15 d.Fsm.Depth.diameter;
  (* state k is at depth k *)
  List.iter
    (fun k ->
       let bits = Array.init 4 (fun i -> (k lsr i) land 1 = 1) in
       Util.checkb
         (Printf.sprintf "state %d at depth %d" k k)
         (Fsm.Depth.depth_of_state d bits sym = Some k))
    [ 0; 1; 7; 15 ]

let rings_partition () =
  let man = Bdd.create () in
  let sym = Fsm.Symbolic.of_netlist man (Circuits.Gray.make ~width:4) in
  let d = Fsm.Depth.compute sym in
  let reached, _ = Fsm.Reach.reachable sym in
  (* rings are disjoint and union to the reachable set *)
  let union = ref (Bdd.zero man) in
  for k = 0 to d.Fsm.Depth.diameter do
    let r = Fsm.Depth.ring d sym k in
    Util.checkb "disjoint" (Bdd.is_zero (Bdd.dand man r !union));
    union := Bdd.dor man !union r
  done;
  Util.checkb "union = reachable" (Bdd.equal !union reached)

let suite =
  [
    of_bdd_semantics;
    apply2_pointwise;
    canonicity;
    roundtrip_threshold;
    Alcotest.test_case "map and terminals" `Quick map_and_terminals;
    depth_matches_explicit;
    Alcotest.test_case "counter depths" `Quick counter_depths;
    Alcotest.test_case "rings partition the reachable set" `Quick
      rings_partition;
  ]
