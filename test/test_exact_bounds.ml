(* The exact minimizer and the Theorem 7 lower bound: sandwich
   properties, budget guards, witness validity. *)

module I = Minimize.Ispec
module E = Minimize.Exact
module LB = Minimize.Lower_bound

let man = Util.man
let nvars = 5

let exact_is_cover_and_minimal =
  Util.qtest ~count:100 "exact result is a cover no heuristic beats"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       match E.minimize man s with
       | None -> true
       | Some r ->
         Util.tt_is_cover ~nvars s r.E.cover
         && Bdd.size man r.E.cover = r.E.size
         && List.for_all
              (fun (e : Minimize.Registry.entry) ->
                 Bdd.size man (e.run (Minimize.Ctx.of_man man) s) >= r.E.size)
              Minimize.Registry.all)

let sandwich =
  Util.qtest ~count:100 "low_bd <= exact <= every heuristic"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       match E.minimum_size man s with
       | None -> true
       | Some m ->
         let lb = LB.compute man s in
         lb <= m
         && List.for_all
              (fun (e : Minimize.Registry.entry) ->
                 Bdd.size man (e.run (Minimize.Ctx.of_man man) s) >= m)
              Minimize.Registry.proper)

let exact_no_dc_is_f =
  Util.qtest ~count:100 "c = 1: the only cover is f itself"
    Util.gen_instance
    (fun desc ->
       let f, _ = Util.build_instance desc in
       let s = I.make ~f ~c:(Bdd.one man) in
       match E.minimize man s with
       | None -> true
       | Some r -> Bdd.equal r.E.cover f && r.E.covers_tried = 1)

let exact_all_dc_is_constant () =
  let f = Util.random_bdd 3 in
  let s = I.make ~f ~c:(Bdd.zero man) in
  match E.minimize man s with
  | Some r -> Util.checki "constant" 1 r.E.size
  | None -> Alcotest.fail "within budget"

let budget_guards () =
  let s = Util.random_ispec_nonzero 5 in
  Util.checkb "support guard" (E.minimize man ~max_support:2 s = None
                               || List.length (Bdd.support man s.I.f
                                               @ Bdd.support man s.I.c) <= 4);
  Util.checkb "dc guard" (E.minimize man ~max_dc:0 s = None
                          || Bdd.is_one s.I.c)

let exact_figure1 () =
  (* The quickstart instance: minimum size 2 (a single-literal cover). *)
  let f_tt, c_tt = Logic.Truth_table.paper_instance "d1d1 01dd" in
  let s =
    I.make ~f:(Logic.Truth_table.to_bdd man f_tt)
      ~c:(Logic.Truth_table.to_bdd man c_tt)
  in
  match E.minimize man s with
  | Some r -> Util.checki "figure 1 minimum" 2 r.E.size
  | None -> Alcotest.fail "within budget"

let lower_bound_witness =
  Util.qtest ~count:150 "lower-bound witness cube is a cube of c"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let bound, cube = LB.witness man s in
       let p = Bdd.Cube.of_cube man cube in
       bound >= 1
       && Bdd.leq man p s.I.c
       && Bdd.size man (Bdd.constrain man s.I.f p) = bound)

let lower_bound_monotone_in_cubes =
  Util.qtest ~count:150 "more cubes never lower the bound" Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       LB.compute man ~cube_limit:1 ~include_short_cube:false s
       <= LB.compute man ~cube_limit:1000 ~include_short_cube:false s)

let lower_bound_full_care () =
  (* c = 1: the bound must equal |f| (the only cover). *)
  let f = Util.random_bdd 4 in
  let s = I.make ~f ~c:(Bdd.one man) in
  Util.checki "tight at c=1" (Bdd.size man f) (LB.compute man s)

let lower_bound_empty_care () =
  let s = I.make ~f:(Bdd.ithvar man 0) ~c:(Bdd.zero man) in
  Alcotest.check_raises "empty care"
    (Invalid_argument "Lower_bound.witness: empty care set")
    (fun () -> ignore (LB.compute man s))

let suite =
  [
    exact_is_cover_and_minimal;
    sandwich;
    exact_no_dc_is_f;
    Alcotest.test_case "all DC -> constant" `Quick exact_all_dc_is_constant;
    Alcotest.test_case "budget guards" `Quick budget_guards;
    Alcotest.test_case "figure 1 exact minimum" `Quick exact_figure1;
    lower_bound_witness;
    lower_bound_monotone_in_cubes;
    Alcotest.test_case "bound tight at c=1" `Quick lower_bound_full_care;
    Alcotest.test_case "bound rejects empty care" `Quick lower_bound_empty_care;
  ]
