(* Joint (vector) minimization via output encoding. *)

module I = Minimize.Ispec
module V = Minimize.Vector

let man = Util.man
let nvars = 5

let gen_vector =
  QCheck2.Gen.(
    let* k = int_range 1 5 in
    let* seeds = list_size (return k) (int_bound 0xFFFFF) in
    return seeds)

let build_vector seeds =
  List.map
    (fun seed ->
       let st = Random.State.make [| seed; 99 |] in
       let f =
         Logic.Truth_table.create nvars (fun _ -> Random.State.bool st)
       in
       let c =
         Logic.Truth_table.create nvars (fun _ -> Random.State.int st 4 > 0)
       in
       let c_bdd = Logic.Truth_table.to_bdd man c in
       let c_bdd = if Bdd.is_zero c_bdd then Bdd.one man else c_bdd in
       I.make ~f:(Logic.Truth_table.to_bdd man f) ~c:c_bdd)
    seeds

let minimizers =
  [
    ("constrain", fun man (s : I.t) -> Bdd.constrain man s.I.f s.I.c);
    ("osm_bt", fun man s ->
       Minimize.Sibling.run_heuristic man Minimize.Sibling.Osm_bt s);
    ("tsm_cp", fun man s ->
       Minimize.Sibling.run_heuristic man Minimize.Sibling.Tsm_cp s);
  ]

let covers_everything =
  Util.qtest ~count:150 "every recovered cover covers its instance"
    gen_vector
    (fun seeds ->
       let instances = build_vector seeds in
       List.for_all
         (fun (_, m) ->
            let r = V.minimize_renamed man ~minimizer:m instances in
            List.length r.V.covers = List.length instances
            && List.for_all2
                 (fun s g -> Util.tt_is_cover ~nvars s g)
                 instances r.V.covers)
         minimizers)

let shared_counts_consistent =
  Util.qtest ~count:150 "shared node counts measure the actual DAGs"
    gen_vector
    (fun seeds ->
       let instances = build_vector seeds in
       let r =
         V.minimize_renamed man
           ~minimizer:(fun man (s : I.t) -> Bdd.constrain man s.I.f s.I.c)
           instances
       in
       r.V.shared_before
       = Bdd.shared_size man (List.map (fun (s : I.t) -> s.I.f) instances)
       && r.V.shared_after = Bdd.shared_size man r.V.covers)

let singleton_matches_scalar =
  Util.qtest ~count:100 "a 1-vector degenerates to the scalar minimizer"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let m man (i : I.t) = Bdd.constrain man i.I.f i.I.c in
       let r = V.minimize man ~minimizer:m [ s ] in
       match r.V.covers with
       | [ g ] -> Bdd.equal g (Bdd.constrain man s.I.f s.I.c)
       | _ -> false)

let equal_instances_share () =
  (* A vector of identical instances should collapse to one shared cover
     under a matching heuristic. *)
  let s = Util.random_ispec_nonzero 4 in
  let shifted = V.minimize_renamed man
      ~minimizer:(fun man i ->
          Minimize.Sibling.run_heuristic man Minimize.Sibling.Tsm_cp i)
      [ s; s; s; s ] in
  match shifted.V.covers with
  | g :: rest ->
    Util.checkb "identical covers" (List.for_all (Bdd.equal g) rest);
    Util.checkb "fully shared"
      (shifted.V.shared_after = Bdd.size man g)
  | [] -> Alcotest.fail "no covers"

let unshifted_guard () =
  (* instances over variable 0 cannot host selector variables *)
  let v0 = Bdd.ithvar man 0 in
  let s = I.make ~f:v0 ~c:(Bdd.one man) in
  Util.checkb "guard raises"
    (match
       V.minimize man
         ~minimizer:(fun man (i : I.t) -> Bdd.constrain man i.I.f i.I.c)
         [ s; s ]
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

let empty_vector_rejected () =
  Util.checkb "empty rejected"
    (match
       V.minimize man
         ~minimizer:(fun man (i : I.t) -> Bdd.constrain man i.I.f i.I.c)
         []
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

let joint_beats_or_ties_separate =
  (* Joint minimization with a matching heuristic should not lose much
     sharing versus minimizing separately; check it never produces
     non-covers and report sharing (soundness-oriented; optimality of
     sharing is heuristic). *)
  Util.qtest ~count:80 "joint minimization keeps shared size finite and sound"
    gen_vector
    (fun seeds ->
       let instances = build_vector seeds in
       let m man i =
         Minimize.Sibling.run_heuristic man Minimize.Sibling.Osm_bt i
       in
       let r = V.minimize_renamed man ~minimizer:m instances in
       r.V.shared_after >= 1 && r.V.shared_after <= 1 + (32 * List.length instances))

let suite =
  [
    covers_everything;
    shared_counts_consistent;
    singleton_matches_scalar;
    Alcotest.test_case "identical instances share" `Quick equal_instances_share;
    Alcotest.test_case "selector-room guard" `Quick unshifted_guard;
    Alcotest.test_case "empty vector rejected" `Quick empty_vector_rejected;
    joint_beats_or_ties_separate;
  ]
