(* Shared test helpers: deterministic random generators for functions and
   instances, oracles, and Alcotest/QCheck glue. *)

module Tt = Logic.Truth_table
module I = Minimize.Ispec

let check = Alcotest.check
let checkb msg b = Alcotest.check Alcotest.bool msg true b
let checki = Alcotest.check Alcotest.int

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A fresh manager per suite keeps node counts meaningful. *)
let man = Bdd.create ()

let rng = Random.State.make [| 0xbdd; 0xd0c |]

(* Random truth table over [n] vars with onset density [p] (percent). *)
let random_tt ?(p = 50) n =
  Tt.create n (fun _ -> Random.State.int rng 100 < p)

let random_bdd ?p n = Tt.to_bdd man (random_tt ?p n)

(* Random instance: f arbitrary, care with density [care_p]. *)
let random_ispec ?(care_p = 75) n =
  I.make ~f:(random_bdd n) ~c:(random_bdd ~p:care_p n)

(* Nonempty-care random instance. *)
let rec random_ispec_nonzero ?care_p n =
  let s = random_ispec ?care_p n in
  if Bdd.is_zero s.I.c then random_ispec_nonzero ?care_p n else s

let tt_of man ~nvars f = Tt.of_bdd man ~nvars f

(* Truth-table cover oracle. *)
let tt_is_cover ~nvars (s : I.t) g =
  let f = tt_of man ~nvars s.I.f
  and c = tt_of man ~nvars s.I.c
  and g = tt_of man ~nvars g in
  Tt.leq (Tt.band f c) g && Tt.leq g (Tt.bor f (Tt.bnot c))

(* QCheck generator producing a random instance description: variable
   count plus seeds, rebuilt deterministically inside the property. *)
let gen_instance =
  QCheck2.Gen.(
    let* n = int_range 1 5 in
    let* fseed = int_bound 0xFFFFFF in
    let* cseed = int_bound 0xFFFFFF in
    return (n, fseed, cseed))

let build_instance (n, fseed, cseed) =
  let st = Random.State.make [| fseed; cseed; n |] in
  let f = Tt.create n (fun _ -> Random.State.bool st) in
  let c = Tt.create n (fun _ -> Random.State.int st 4 > 0) in
  (Tt.to_bdd man f, Tt.to_bdd man c)

let build_ispec_nonzero desc =
  let f, c = build_instance desc in
  let c = if Bdd.is_zero c then Bdd.one man else c in
  I.make ~f ~c
