(* Observability layer: Chrome-sink JSON well-formedness (balanced B/E
   events under arbitrary, exception-unwound nesting), memory-ring
   truncation, report self/total arithmetic, probes, engine events, and
   a differential check that tracing never changes minimizer results. *)

module T = Obs.Trace

(* ----- a minimal JSON parser -----

   The dependency set has no JSON library, and the schema check must not
   trust the writer under test, so parse from scratch.  Accepts exactly
   the RFC 8259 grammar fragments the chrome sink can emit. *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JArr of json list
  | JObj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let m = String.length lit in
    if !pos + m <= n && String.sub s !pos m = lit then begin
      pos := !pos + m;
      v
    end
    else fail ("expected " ^ lit)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance ()
         | Some '\\' -> Buffer.add_char b '\\'; advance ()
         | Some '/' -> Buffer.add_char b '/'; advance ()
         | Some 'b' -> Buffer.add_char b '\b'; advance ()
         | Some 'f' -> Buffer.add_char b '\012'; advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 'r' -> Buffer.add_char b '\r'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'u' ->
           advance ();
           let c = hex4 () in
           (* the sink only escapes control chars, all < 0x80 *)
           if c < 0x80 then Buffer.add_char b (Char.chr c)
           else Buffer.add_string b (Printf.sprintf "\\u%04X" c)
         | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        JObj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        JObj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        JArr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        JArr (elements [])
      end
    | Some '"' -> JStr (parse_string ())
    | Some 't' -> literal "true" (JBool true)
    | Some 'f' -> literal "false" (JBool false)
    | Some 'n' -> literal "null" JNull
    | Some _ -> JNum (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | JObj kvs -> List.assoc_opt k kvs
  | _ -> None

(* Collect the chrome JSON written while [f] runs (sink closed before
   parsing, so the document must be complete). *)
let chrome_capture f =
  let buf = Buffer.create 1024 in
  let sink = T.chrome_writer (Buffer.add_string buf) in
  let r = T.with_sink sink f in
  T.close sink;
  (r, Buffer.contents buf)

(* Schema check on a parsed chrome document: an array of event objects
   with the mandatory fields, every "E" closing the innermost open "B"
   of the same name, and no "B" left open.  Returns the event count. *)
let check_chrome_schema json =
  let events =
    match json with
    | JArr evs -> evs
    | _ -> Alcotest.fail "top level is not an array"
  in
  let stack = ref [] in
  List.iter
    (fun ev ->
       let str k =
         match member k ev with
         | Some (JStr s) -> s
         | _ -> Alcotest.fail (Printf.sprintf "missing string field %S" k)
       in
       let num k =
         match member k ev with
         | Some (JNum f) -> f
         | _ -> Alcotest.fail (Printf.sprintf "missing number field %S" k)
       in
       let name = str "name" in
       ignore (num "pid");
       ignore (num "tid");
       Util.checkb "ts is finite and nonnegative"
         (Float.is_finite (num "ts") && num "ts" >= 0.0);
       (match member "args" ev with
        | None | Some (JObj _) -> ()
        | Some _ -> Alcotest.fail "args is not an object");
       match str "ph" with
       | "B" -> stack := name :: !stack
       | "E" -> (
           match !stack with
           | top :: rest when top = name -> stack := rest
           | top :: _ ->
             Alcotest.fail
               (Printf.sprintf "E %S closes open span %S" name top)
           | [] -> Alcotest.fail (Printf.sprintf "E %S with no open span" name))
       | "i" -> Util.checkb "instant has scope" (str "s" = "t")
       | ph -> Alcotest.fail ("unknown phase " ^ ph))
    events;
  (match !stack with
   | [] -> ()
   | names ->
     Alcotest.fail ("unclosed spans: " ^ String.concat ", " names));
  List.length events

(* ----- chrome sink: fixed nesting with nasty names and attrs ----- *)

let chrome_well_formed () =
  let (), out =
    chrome_capture (fun () ->
        T.with_span "outer"
          ~attrs:[ ("q", T.Str "a\"b\\c\nd\te\r\x01f"); ("n", T.Int (-3)) ]
        @@ fun sp ->
        T.add sp "nan" (T.Float Float.nan);
        T.add sp "pi" (T.Float 3.25);
        T.add sp "yes" (T.Bool true);
        T.instant "tick" ~attrs:[ ("i", T.Int 1) ];
        T.with_span "inner \"quoted\"" @@ fun _ -> ())
  in
  let json = parse_json out in
  Util.checki "event count" 5 (check_chrome_schema json);
  (* escaping round-trips: the raw attr string comes back intact.
     Initial attrs ride the B event; [add]ed attrs ride the E event. *)
  let find_outer ph =
    match json with
    | JArr evs ->
      List.find
        (fun e ->
           member "ph" e = Some (JStr ph)
           && member "name" e = Some (JStr "outer"))
        evs
    | _ -> assert false
  in
  (match member "args" (find_outer "B") with
   | Some args ->
     Util.checkb "string attr round-trips"
       (member "q" args = Some (JStr "a\"b\\c\nd\te\r\x01f"));
     Util.checkb "int attr" (member "n" args = Some (JNum (-3.0)))
   | None -> Alcotest.fail "outer B lost its args");
  (match member "args" (find_outer "E") with
   | Some args ->
     Util.checkb "non-finite float is null" (member "nan" args = Some JNull);
     Util.checkb "finite float survives"
       (member "pi" args = Some (JNum 3.25));
     Util.checkb "bool attr" (member "yes" args = Some (JBool true))
   | None -> Alcotest.fail "outer E lost its args")

let chrome_unwound () =
  let (), out =
    chrome_capture (fun () ->
        try
          T.with_span "doomed" @@ fun _ ->
          T.with_span "inner" @@ fun _ -> raise Exit
        with Exit -> ())
  in
  let json = parse_json out in
  Util.checki "B/E balanced despite raise" 4 (check_chrome_schema json);
  match json with
  | JArr evs ->
    let unwound =
      List.filter
        (fun e ->
           match member "args" e with
           | Some args -> member "unwound" args = Some (JBool true)
           | None -> false)
        evs
    in
    Util.checki "both unwound spans flagged" 2 (List.length unwound)
  | _ -> assert false

(* ----- chrome sink under random nesting programs (qcheck) ----- *)

(* A random span tree; [raises] aborts the node after its children, so
   deep prefixes of the program unwind through several live spans. *)
type prog = Node of { id : int; children : prog list; raises : bool }

let prog_gen =
  QCheck2.Gen.(
    sized @@ fix (fun self size ->
        let* id = int_bound 20 in
        let* raises = map (fun b -> size > 0 && b) (frequency [ (5, return false); (1, return true) ]) in
        let* children =
          if size = 0 then return []
          else list_size (int_bound 3) (self (size / 2))
        in
        return (Node { id; children; raises })))

let rec print_prog (Node { id; children; raises }) =
  Printf.sprintf "N(%d%s,[%s])" id
    (if raises then "!" else "")
    (String.concat ";" (List.map print_prog children))

let rec run_prog (Node { id; children; raises }) =
  T.with_span (Printf.sprintf "s%d" id) @@ fun sp ->
  T.add sp "id" (T.Int id);
  List.iter run_prog children;
  if raises then raise Exit

let qcheck_chrome_balanced =
  Util.qtest ~count:100 "chrome balanced under random nesting"
    QCheck2.Gen.(list_size (int_bound 4) prog_gen)
    (fun progs ->
       let (), out =
         chrome_capture (fun () ->
             List.iter
               (fun p -> try run_prog p with Exit -> ())
               progs)
       in
       ignore (check_chrome_schema (parse_json out));
       true)

(* ----- memory ring ----- *)

let memory_ring_truncates () =
  let sink = T.memory ~capacity:8 () in
  T.with_sink sink (fun () ->
      for i = 0 to 19 do
        T.instant (Printf.sprintf "i%d" i)
      done);
  let evs = T.events sink in
  Util.checki "ring keeps capacity" 8 (List.length evs);
  Util.checki "ring drops the rest" 12 (T.dropped sink);
  (* oldest dropped first: the survivors are the 8 most recent, in order *)
  Util.check
    Alcotest.(list string)
    "survivors are the newest, oldest first"
    [ "i12"; "i13"; "i14"; "i15"; "i16"; "i17"; "i18"; "i19" ]
    (List.map (fun (e : T.event) -> e.T.name) evs);
  (* timestamps are monotone *)
  let rec mono = function
    | (a : T.event) :: (b : T.event) :: rest ->
      a.T.ts_ns <= b.T.ts_ns && mono (b :: rest)
    | _ -> true
  in
  Util.checkb "timestamps monotone" (mono evs)

(* ----- report arithmetic ----- *)

let ev ?(tid = 0) name phase ts_us =
  {
    T.name;
    phase;
    ts_ns = Int64.mul (Int64.of_int ts_us) 1000L;
    tid;
    attrs = [];
  }

let report_self_total () =
  (* outer [0,100]; children inner [10,40] and inner [50,60]; instant at
     70; an orphan E and a dangling B must both be ignored. *)
  let stream =
    [
      ev "orphan" T.End 0;
      ev "outer" T.Begin 0;
      ev "inner" T.Begin 10;
      ev "inner" T.End 40;
      ev "inner" T.Begin 50;
      ev "inner" T.End 60;
      ev "blip" T.Instant 70;
      ev "outer" T.End 100;
      ev "dangling" T.Begin 110;
    ]
  in
  let rows = Obs.Report.of_events stream in
  let find name = List.find (fun (r : Obs.Report.row) -> r.name = name) rows in
  let outer = find "outer" and inner = find "inner" and blip = find "blip" in
  Util.checki "outer count" 1 outer.count;
  Util.checkb "outer total" (outer.total_ns = 100_000L);
  Util.checkb "outer self = total - children" (outer.self_ns = 60_000L);
  Util.checki "inner count" 2 inner.count;
  Util.checkb "inner total" (inner.total_ns = 40_000L);
  Util.checkb "inner self" (inner.self_ns = 40_000L);
  Util.checki "instant counted" 1 blip.count;
  Util.checkb "instant has no duration" (blip.total_ns = 0L);
  Util.checkb "no row for orphan/dangling"
    (not (List.exists (fun (r : Obs.Report.row) ->
         r.name = "orphan" || r.name = "dangling") rows));
  Util.checkb "sorted by total desc"
    (let totals = List.map (fun (r : Obs.Report.row) -> r.total_ns) rows in
     List.sort (fun a b -> Int64.compare b a) totals = totals)

let report_from_live_spans () =
  let sink = T.memory () in
  T.with_sink sink (fun () ->
      T.with_span "a" @@ fun _ ->
      T.with_span "b" @@ fun _ -> ignore (Sys.opaque_identity 1));
  let rows = Obs.Report.of_events (T.events sink) in
  let a = List.find (fun (r : Obs.Report.row) -> r.name = "a") rows in
  let b = List.find (fun (r : Obs.Report.row) -> r.name = "b") rows in
  Util.checkb "child total within parent" (b.total_ns <= a.total_ns);
  Util.checkb "parent self = total - child"
    (Int64.add a.self_ns b.total_ns = a.total_ns)

(* ----- probes ----- *)

let probe_counters_and_histograms () =
  Obs.Probe.reset ();
  Obs.Probe.incr "c";
  Obs.Probe.count "c" 4;
  Util.checki "counter" 5 (Obs.Probe.counter_value "c");
  Util.checki "unknown counter" 0 (Obs.Probe.counter_value "nope");
  List.iter (Obs.Probe.observe "h") [ 0; 1; 2; 3; 8; 15; 1024 ];
  (match Obs.Probe.histograms () with
   | [ ("h", buckets) ] ->
     Util.checki "bucket 0 holds <=1" 2 buckets.(0);
     Util.checki "bucket 1 holds 2-3" 2 buckets.(1);
     Util.checki "bucket 3 holds 8-15" 2 buckets.(3);
     Util.checki "bucket 10 holds 1024" 1 buckets.(10)
   | hs -> Alcotest.fail (Printf.sprintf "%d histograms" (List.length hs)));
  Util.check Alcotest.string "bucket label" "8-15" (Obs.Probe.bucket_label 3);
  Util.check Alcotest.string "bucket 0 label" "0-1" (Obs.Probe.bucket_label 0);
  Obs.Probe.reset ();
  Util.checkb "reset drops everything"
    (Obs.Probe.counters () = [] && Obs.Probe.histograms () = [])

(* ----- engine events ----- *)

let engine_events () =
  let man = Bdd.create ~cache_bits:4 () in
  let gcs = ref 0 and grows = ref [] in
  Bdd.on_event man (function
      | Bdd.Gc_run { reclaimed; live_nodes } ->
        incr gcs;
        Util.checkb "gc counts sane" (reclaimed >= 0 && live_nodes > 0)
      | Bdd.Cache_grown { old_capacity; new_capacity } ->
        grows := (old_capacity, new_capacity) :: !grows
      | Bdd.Table_grown _ -> ());
  (* churn enough distinct operations to overflow a 16-entry cache into
     growth, then collect the garbage *)
  let vars = List.init 10 (Bdd.ithvar man) in
  ignore
    (List.fold_left
       (fun acc v ->
          let acc = Bdd.dor man (Bdd.dand man acc v) (Bdd.compl acc) in
          ignore (Bdd.dxor man acc v);
          acc)
       (Bdd.one man) vars);
  ignore (Bdd.gc man);
  Util.checkb "gc listener fired" (!gcs >= 1);
  Util.checkb "cache growth listener fired" (!grows <> []);
  List.iter
    (fun (o, n) -> Util.checkb "growth doubles" (n = 2 * o))
    !grows;
  (* the same events appear as instants on a trace sink *)
  let sink = T.memory () in
  T.with_sink sink (fun () ->
      let man2 = Bdd.create ~cache_bits:4 () in
      let vars = List.init 10 (Bdd.ithvar man2) in
      ignore
        (List.fold_left
           (fun acc v -> Bdd.dor man2 (Bdd.dand man2 acc v) (Bdd.compl acc))
           (Bdd.one man2) vars);
      ignore (Bdd.gc man2));
  let names = List.map (fun (e : T.event) -> e.T.name) (T.events sink) in
  Util.checkb "bdd.gc instant traced" (List.mem "bdd.gc" names)

(* ----- differential: tracing never changes results ----- *)

let differential_tracing =
  Util.qtest ~count:60 "tracing vs null sink: same minimizer results"
    (QCheck2.Gen.return ())
    (fun () ->
       let inst = Util.random_ispec_nonzero 6 in
       List.for_all
         (fun (e : Minimize.Registry.entry) ->
            let plain = e.run (Minimize.Ctx.of_man Util.man) inst in
            let traced =
              T.with_sink (T.memory ()) (fun () -> e.run (Minimize.Ctx.of_man Util.man) inst)
            in
            let chromed =
              let buf = Buffer.create 256 in
              T.with_sink
                (T.chrome_writer (Buffer.add_string buf))
                (fun () -> e.run (Minimize.Ctx.of_man Util.man) inst)
            in
            Bdd.equal plain traced && Bdd.equal plain chromed)
         Minimize.Registry.extended)

(* ----- clock sanity ----- *)

let clock_monotone () =
  let a = Obs.Clock.now_ns () in
  let b = Obs.Clock.now_ns () in
  Util.checkb "clock never goes backwards" (Int64.compare a b <= 0);
  let (), dt = Obs.Clock.timed (fun () -> ignore (Sys.opaque_identity 1)) in
  Util.checkb "timed returns nonnegative seconds" (dt >= 0.0);
  Util.checkb "ns conversion" (Obs.Clock.ns_to_s 1_500_000_000L = 1.5)

let suite =
  [
    Alcotest.test_case "chrome well-formed" `Quick chrome_well_formed;
    Alcotest.test_case "chrome unwound" `Quick chrome_unwound;
    qcheck_chrome_balanced;
    Alcotest.test_case "memory ring truncates" `Quick memory_ring_truncates;
    Alcotest.test_case "report self/total" `Quick report_self_total;
    Alcotest.test_case "report live spans" `Quick report_from_live_spans;
    Alcotest.test_case "probes" `Quick probe_counters_and_histograms;
    Alcotest.test_case "engine events" `Quick engine_events;
    differential_tracing;
    Alcotest.test_case "clock" `Quick clock_monotone;
  ]
