(* Matching criteria (Definition 5) and their Table 1 properties. *)

module M = Minimize.Matching
module I = Minimize.Ispec

let man = Util.man

let gen_two =
  QCheck2.Gen.(
    let* a = Util.gen_instance in
    let* b = Util.gen_instance in
    return (a, b))

let build (a, b) =
  let n (x, _, _) = x in
  (* Use the same variable count for both so supports overlap. *)
  let nmax = max (n a) (n b) in
  let fix (_, f, c) = (nmax, f, c) in
  (Util.build_ispec_nonzero (fix a), Util.build_ispec_nonzero (fix b))

let definitions =
  Util.qtest ~count:400 "criteria match their logical definitions" gen_two
    (fun pair ->
       let s1, s2 = build pair in
       let xor_care c = Bdd.dand man (Bdd.dxor man s1.I.f s2.I.f) c in
       M.matches man M.Osdm s1 s2 = Bdd.is_zero s1.I.c
       && M.matches man M.Osm s1 s2
          = (Bdd.leq man s1.I.c s2.I.c && Bdd.is_zero (xor_care s1.I.c))
       && M.matches man M.Tsm s1 s2
          = Bdd.is_zero (xor_care (Bdd.dand man s1.I.c s2.I.c)))

let hierarchy =
  Util.qtest ~count:400 "osdm => osm => tsm (Definition 5 hierarchy)" gen_two
    (fun pair ->
       let s1, s2 = build pair in
       let implies a b = (not a) || b in
       implies (M.matches man M.Osdm s1 s2) (M.matches man M.Osm s1 s2)
       && implies (M.matches man M.Osm s1 s2) (M.matches man M.Tsm s1 s2))

let i_cover_is_common =
  Util.qtest ~count:400 "i_cover yields a common i-cover" gen_two
    (fun pair ->
       let s1, s2 = build pair in
       List.for_all
         (fun crit ->
            match M.i_cover man crit s1 s2 with
            | None -> true
            | Some cover ->
              I.is_i_cover man cover s1 && I.is_i_cover man cover s2)
         M.all)

let i_cover_maximal_dc =
  Util.qtest ~count:400 "i-cover care set is minimal (maximal DC)" gen_two
    (fun pair ->
       let s1, s2 = build pair in
       (* The common i-cover's care set must not exceed c1 + c2. *)
       List.for_all
         (fun crit ->
            match M.i_cover man crit s1 s2 with
            | None -> true
            | Some cover ->
              Bdd.leq man cover.I.c (Bdd.dor man s1.I.c s2.I.c))
         M.all)

(* Table 1: check each property against randomized instances; reflexivity
   and symmetry must hold/fail exactly as the table says.  For the negative
   entries we exhibit a concrete counterexample. *)

let table1_reflexive =
  Util.qtest ~count:400 "reflexive criteria match themselves"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       List.for_all
         (fun crit ->
            (not (M.reflexive crit)) || M.matches man crit s s)
         M.all)

let table1_reflexive_negative () =
  (* osdm is not reflexive: any instance with c <> 0. *)
  let v = Bdd.ithvar man 0 in
  let s = I.make ~f:v ~c:v in
  Util.checkb "osdm not reflexive" (not (M.matches man M.Osdm s s))

let table1_symmetric =
  Util.qtest ~count:400 "tsm is symmetric" gen_two
    (fun pair ->
       let s1, s2 = build pair in
       M.matches man M.Tsm s1 s2 = M.matches man M.Tsm s2 s1)

let table1_symmetric_negative () =
  (* osm is not symmetric: [f; 0] osm [f; 1] but not conversely. *)
  let v = Bdd.ithvar man 0 in
  let s1 = I.make ~f:v ~c:(Bdd.zero man) in
  let s2 = I.make ~f:v ~c:(Bdd.one man) in
  Util.checkb "osm forward" (M.matches man M.Osm s1 s2);
  Util.checkb "osm not backward" (not (M.matches man M.Osm s2 s1));
  Util.checkb "osdm forward" (M.matches man M.Osdm s1 s2);
  Util.checkb "osdm not backward" (not (M.matches man M.Osdm s2 s1))

let table1_transitive =
  Util.qtest ~count:300 "osdm and osm are transitive"
    QCheck2.Gen.(
      let* a = Util.gen_instance in
      let* b = Util.gen_instance in
      let* c = Util.gen_instance in
      return (a, b, c))
    (fun (a, b, c) ->
       let n (x, _, _) = x in
       let nmax = max (n a) (max (n b) (n c)) in
       let fix (_, f, s) = (nmax, f, s) in
       let s1 = Util.build_ispec_nonzero (fix a)
       and s2 = Util.build_ispec_nonzero (fix b)
       and s3 = Util.build_ispec_nonzero (fix c) in
       List.for_all
         (fun crit ->
            (not (M.transitive crit))
            || (not (M.matches man crit s1 s2))
            || (not (M.matches man crit s2 s3))
            || M.matches man crit s1 s3)
         M.all)

let table1_transitive_negative () =
  (* tsm is not transitive: x tsm [?; 0] tsm !x but x does not tsm !x. *)
  let v = Bdd.ithvar man 0 in
  let s1 = I.make ~f:v ~c:(Bdd.one man) in
  let s2 = I.make ~f:v ~c:(Bdd.zero man) in
  let s3 = I.make ~f:(Bdd.compl v) ~c:(Bdd.one man) in
  Util.checkb "1 tsm 2" (M.matches man M.Tsm s1 s2);
  Util.checkb "2 tsm 3" (M.matches man M.Tsm s2 s3);
  Util.checkb "1 not tsm 3" (not (M.matches man M.Tsm s1 s3))

let table1_static () =
  (* The table itself. *)
  let expect crit r s t =
    Util.checkb (M.name crit ^ " reflexive") (M.reflexive crit = r);
    Util.checkb (M.name crit ^ " symmetric") (M.symmetric crit = s);
    Util.checkb (M.name crit ^ " transitive") (M.transitive crit = t)
  in
  expect M.Osdm false false true;
  expect M.Osm true false true;
  expect M.Tsm true true false

let match_either_directions () =
  let v = Bdd.ithvar man 0 in
  let s1 = I.make ~f:v ~c:(Bdd.zero man) in
  let s2 = I.make ~f:(Bdd.compl v) ~c:(Bdd.one man) in
  (* Only the s1 -> s2 direction matches under osdm; match_either finds it
     regardless of argument order. *)
  Util.checkb "forward" (M.match_either man M.Osdm s1 s2 <> None);
  Util.checkb "backward" (M.match_either man M.Osdm s2 s1 <> None)

let names () =
  List.iter
    (fun crit ->
       Util.checkb "name round trip" (M.of_name (M.name crit) = Some crit))
    M.all;
  Util.checkb "unknown" (M.of_name "bogus" = None)

let suite =
  [
    definitions;
    hierarchy;
    i_cover_is_common;
    i_cover_maximal_dc;
    table1_reflexive;
    Alcotest.test_case "osdm not reflexive" `Quick table1_reflexive_negative;
    table1_symmetric;
    Alcotest.test_case "osm/osdm not symmetric" `Quick table1_symmetric_negative;
    table1_transitive;
    Alcotest.test_case "tsm not transitive" `Quick table1_transitive_negative;
    Alcotest.test_case "Table 1 values" `Quick table1_static;
    Alcotest.test_case "match_either tries both ways" `Quick match_either_directions;
    Alcotest.test_case "criterion names" `Quick names;
  ]
