(* Engine storage-layer tests: the lossy computed cache, unique-table
   garbage collection, the external-reference API, and the statistics
   counters.  The differential properties compare a stressed manager
   (tiny forced-eviction cache, forced GC cycles) against a fresh default
   manager through truth tables, which is exactly the guarantee the
   engine makes: evictions and collections may cost recomputation or
   canonicity of stale edges, never correctness. *)

module Tt = Logic.Truth_table

let nvars = 4

(* Deterministic function family from a seed. *)
let tt_of_seed n seed =
  let st = Random.State.make [| seed; n; 0xcafe |] in
  Tt.create n (fun _ -> Random.State.bool st)

let gen_seeds =
  QCheck2.Gen.(
    let* a = int_bound 0xFFFFF in
    let* b = int_bound 0xFFFFF in
    return (a, b))

(* Run every binary/unary operator of interest on (f, c) and return the
   results as truth tables, so they can be compared across managers. *)
let op_results man f c =
  let c_nz = if Bdd.is_zero c then Bdd.one man else c in
  let results =
    [
      Bdd.dand man f c;
      Bdd.dor man f c;
      Bdd.dxor man f c;
      Bdd.ite man f c (Bdd.compl c);
      Bdd.constrain man f c_nz;
      Bdd.restrict man f c_nz;
      Bdd.exists man [ 0; 2 ] f;
      Bdd.forall man [ 1 ] c;
      Bdd.and_exists man [ 0; 1 ] f c;
      Bdd.compose man f ~var:1 c;
    ]
  in
  List.map (fun g -> Tt.of_bdd man ~nvars g) results

let tiny_cache_differential =
  Util.qtest ~count:150 "4-entry lossy cache computes the same functions"
    gen_seeds
    (fun (s1, s2) ->
       (* cache_bits = 2 and a budget that forbids growth: every probe
          conflicts constantly, so most lookups are forced evictions. *)
       let small = Bdd.create ~cache_bits:2 ~cache_bytes:0 () in
       let big = Bdd.create () in
       let ft = tt_of_seed nvars s1 and ct = tt_of_seed nvars s2 in
       let r_small =
         op_results small (Tt.to_bdd small ft) (Tt.to_bdd small ct)
       in
       let r_big = op_results big (Tt.to_bdd big ft) (Tt.to_bdd big ct) in
       List.for_all2 Tt.equal r_small r_big)

let forced_gc_differential =
  Util.qtest ~count:150 "forced GC cycles never change operator results"
    gen_seeds
    (fun (s1, s2) ->
       let man = Bdd.create () in
       let big = Bdd.create () in
       let ft = tt_of_seed nvars s1 and ct = tt_of_seed nvars s2 in
       let f = Tt.to_bdd man ft and c = Tt.to_bdd man ct in
       (* Root the inputs, then interleave operator runs with full
          collections: results computed before a GC become stale garbage,
          and recomputing them afterwards must give the same functions. *)
       Bdd.ref_ man f;
       Bdd.ref_ man c;
       let r1 = op_results man f c in
       ignore (Bdd.gc man);
       let r2 = op_results man f c in
       ignore (Bdd.gc man);
       ignore (Bdd.gc man);
       let r3 = op_results man f c in
       let r_big = op_results big (Tt.to_bdd big ft) (Tt.to_bdd big ct) in
       List.for_all2 Tt.equal r1 r_big
       && List.for_all2 Tt.equal r2 r_big
       && List.for_all2 Tt.equal r3 r_big)

let kernel_vs_ite_differential =
  Util.qtest ~count:200 "specialized and/or/xor kernels agree with raw ite"
    gen_seeds
    (fun (s1, s2) ->
       let man = Bdd.create () in
       let f = Tt.to_bdd man (tt_of_seed nvars s1) in
       let g = Tt.to_bdd man (tt_of_seed nvars s2) in
       (* The 3-operand encodings the kernels replace.  [ite] itself
          dispatches binary shapes to the kernels, so the reference here
          is the Shannon expansion built from cofactors — an independent
          path through the engine. *)
       let ite_ref a b c =
         (* a·b + ¬a·c computed pointwise on truth tables *)
         let tt x = Tt.of_bdd man ~nvars x in
         Tt.to_bdd man
           (Tt.bor (Tt.band (tt a) (tt b)) (Tt.band (Tt.bnot (tt a)) (tt c)))
       in
       let cases =
         [
           (Bdd.and_ man f g, ite_ref f g (Bdd.zero man));
           (Bdd.or_ man f g, ite_ref f (Bdd.one man) g);
           (Bdd.xor man f g, ite_ref f (Bdd.compl g) g);
           (* complemented operands exercise the XOR sign factoring and
              the AND uid-ordering *)
           (Bdd.and_ man (Bdd.compl f) g, ite_ref (Bdd.compl f) g (Bdd.zero man));
           (Bdd.xor man (Bdd.compl f) (Bdd.compl g),
            ite_ref (Bdd.compl f) g (Bdd.compl g));
           (Bdd.xor man f (Bdd.compl g), ite_ref f g (Bdd.compl g));
         ]
       in
       List.for_all (fun (a, b) -> Bdd.equal a b) cases)

let kernel_counters () =
  let man = Bdd.create () in
  let x i = Bdd.ithvar man i in
  ignore (Bdd.and_ man (x 0) (x 1));
  ignore (Bdd.xor man (x 2) (x 3));
  let s = Bdd.snapshot man in
  Util.checkb "and kernel counted" (s.Bdd.Stats.and_recursions > 0);
  Util.checkb "xor kernel counted" (s.Bdd.Stats.xor_recursions > 0);
  (* De Morgan: or_ must reuse the and_ cache, not a separate opcode *)
  Bdd.clear_caches man;
  let f = Bdd.and_ man (x 0) (x 1) in
  let s1 = Bdd.snapshot man in
  let g = Bdd.or_ man (Bdd.compl (x 0)) (Bdd.compl (x 1)) in
  Util.checkb "De Morgan result" (Bdd.equal g (Bdd.compl f));
  let s2 = Bdd.snapshot man in
  Util.checkb "or_ hits the and_ cache"
    (s2.Bdd.Stats.cache_hits > s1.Bdd.Stats.cache_hits)

let stats_delta () =
  let man = Bdd.create () in
  let x i = Bdd.ithvar man i in
  let before = Bdd.snapshot man in
  let f = Bdd.and_ man (x 0) (Bdd.xor man (x 1) (x 2)) in
  let after = Bdd.snapshot man in
  let d = Bdd.Stats.delta ~before ~after in
  (* monotone counters are after - before... *)
  Util.checkb "work attributed to the window"
    (d.Bdd.Stats.and_recursions > 0 && d.Bdd.Stats.xor_recursions > 0);
  Util.checki "lookup delta"
    (after.Bdd.Stats.cache_lookups - before.Bdd.Stats.cache_lookups)
    d.Bdd.Stats.cache_lookups;
  Util.checki "interned delta"
    (after.Bdd.Stats.interned_total - before.Bdd.Stats.interned_total)
    d.Bdd.Stats.interned_total;
  (* ...while level quantities are the after-side values as-is *)
  Util.checki "live nodes are a level, not a delta"
    after.Bdd.Stats.live_nodes d.Bdd.Stats.live_nodes;
  Util.checki "vars are a level" after.Bdd.Stats.vars d.Bdd.Stats.vars;
  (* a fully cache-served window deltas to zero work *)
  let b2 = Bdd.snapshot man in
  ignore (Bdd.and_ man (x 0) (Bdd.xor man (x 1) (x 2)));
  let d2 = Bdd.Stats.delta ~before:b2 ~after:(Bdd.snapshot man) in
  Util.checki "no new recursions beyond the cached roots"
    d2.Bdd.Stats.cache_lookups d2.Bdd.Stats.cache_hits;
  Util.checki "nothing interned when served from cache" 0
    d2.Bdd.Stats.interned_total;
  Util.checki "no stores when served from cache" 0 d2.Bdd.Stats.cache_stores;
  ignore f

let canonicity_after_gc_churn =
  Util.qtest ~count:100 "equal iff same uid holds after GC under churn"
    gen_seeds
    (fun (s1, s2) ->
       let man = Bdd.create () in
       let f = Tt.to_bdd man (tt_of_seed nvars s1) in
       let c = Tt.to_bdd man (tt_of_seed nvars s2) in
       Bdd.ref_ man f;
       Bdd.ref_ man c;
       let ok = ref true in
       for round = 0 to 4 do
         (* churn: build and abandon garbage, then collect it *)
         ignore (Bdd.dxor man f (Bdd.ithvar man (round mod nvars)));
         ignore (Bdd.restrict man (Bdd.dor man f c) c);
         ignore (Bdd.gc man);
         (* the same function built two ways from rooted inputs must be
            one edge (same uid), and a different function must not *)
         let a = Bdd.dand man f c in
         let b = Bdd.compl (Bdd.dor man (Bdd.compl f) (Bdd.compl c)) in
         let d = Bdd.dor man f c in
         ok :=
           !ok && Bdd.equal a b
           && Bdd.uid a = Bdd.uid b
           && (Bdd.equal a d = (Bdd.uid a = Bdd.uid d))
       done;
       !ok)

let gc_reclaims_and_roots_survive () =
  let man = Bdd.create () in
  let x i = Bdd.ithvar man i in
  let kept = Bdd.dand man (x 0) (Bdd.dor man (x 1) (x 2)) in
  Bdd.ref_ man kept;
  let kept_uid = Bdd.uid kept in
  (* garbage: a sizable parity cone nothing roots *)
  let parity =
    List.fold_left (fun acc i -> Bdd.dxor man acc (x i)) (x 3)
      [ 4; 5; 6; 7; 8 ]
  in
  let live_before = (Bdd.snapshot man).Bdd.Stats.live_nodes in
  Util.checkb "garbage is live before gc" (Bdd.size man parity > 2);
  let reclaimed = Bdd.gc man in
  let s = Bdd.snapshot man in
  Util.checkb "something was reclaimed" (reclaimed > 0);
  Util.checki "live accounting" (live_before - reclaimed) s.Bdd.Stats.live_nodes;
  Util.checki "gc runs counted" 1 s.Bdd.Stats.gc_runs;
  Util.checki "reclaimed total counted" reclaimed s.Bdd.Stats.gc_reclaimed;
  (* the rooted cone still canonical: rebuilding it finds the same node *)
  let again = Bdd.dand man (x 0) (Bdd.dor man (x 1) (x 2)) in
  Util.checkb "rooted edge kept its identity" (Bdd.uid again = kept_uid);
  (* deref, and the cone becomes collectable *)
  Bdd.deref man kept;
  let reclaimed2 = Bdd.gc man in
  Util.checkb "deref makes the cone dead" (reclaimed2 > 0);
  Util.checki "only projection vars remain"
    (9 + 1)
    (Bdd.snapshot man).Bdd.Stats.live_nodes

let with_root_protects () =
  let man = Bdd.create () in
  let x i = Bdd.ithvar man i in
  let f = Bdd.dand man (x 0) (x 1) in
  let uid_inside =
    Bdd.with_root man f (fun f ->
        ignore (Bdd.gc man);
        (* still canonical inside the scope *)
        Bdd.uid (Bdd.dand man (x 0) (x 1)) = Bdd.uid f)
  in
  Util.checkb "rooted within with_root" uid_inside;
  Util.checki "root released on exit" 0
    (Bdd.snapshot man).Bdd.Stats.external_refs

let eviction_counters () =
  let man = Bdd.create ~cache_bits:1 ~cache_bytes:0 () in
  let x i = Bdd.ithvar man i in
  (* enough distinct operations to overflow a 2-entry cache many times *)
  let acc = ref (Bdd.zero man) in
  for i = 0 to 7 do
    acc := Bdd.dor man !acc (Bdd.dand man (x i) (x (i + 8)))
  done;
  let s = Bdd.snapshot man in
  Util.checkb "lookups counted" (s.Bdd.Stats.cache_lookups > 0);
  Util.checkb "stores counted" (s.Bdd.Stats.cache_stores > 0);
  Util.checkb "evictions happen in a 2-entry cache"
    (s.Bdd.Stats.cache_evictions > 0);
  Util.checkb "cache stayed within its budget"
    (s.Bdd.Stats.cache_capacity = 2);
  Util.checkb "apply recursions counted" (s.Bdd.Stats.and_recursions > 0)

let cache_growth_bounded () =
  (* 4-entry start, budget for exactly 64 entries: growth must stop there *)
  let man = Bdd.create ~cache_bits:2 ~cache_bytes:(64 * 32) () in
  let x i = Bdd.ithvar man i in
  let acc = ref (Bdd.zero man) in
  for i = 0 to 11 do
    acc := Bdd.dxor man !acc (Bdd.dand man (x i) (x (i + 12)))
  done;
  let s = Bdd.snapshot man in
  Util.checkb "cache grew" (s.Bdd.Stats.cache_capacity > 4);
  Util.checkb "cache bounded by the byte budget"
    (s.Bdd.Stats.cache_capacity <= 64)

let auto_gc_triggers () =
  (* With a rooted edge and lots of garbage, the automatic trigger must
     eventually fire a collection on its own. *)
  let man = Bdd.create () in
  let x i = Bdd.ithvar man i in
  let kept = Bdd.dand man (x 0) (x 1) in
  Bdd.ref_ man kept;
  let st = Random.State.make [| 0xabcd |] in
  for _ = 0 to 60 do
    ignore
      (Tt.to_bdd man (Tt.create 12 (fun _ -> Random.State.bool st)))
  done;
  let s = Bdd.snapshot man in
  Util.checkb "auto gc ran" (s.Bdd.Stats.gc_runs > 0);
  Util.checkb "auto gc reclaimed nodes" (s.Bdd.Stats.gc_reclaimed > 0);
  Util.checkb "rooted edge survived"
    (Bdd.uid (Bdd.dand man (x 0) (x 1)) = Bdd.uid kept)

let stats_labels_honest () =
  let man = Bdd.create () in
  let x i = Bdd.ithvar man i in
  let f = Bdd.dand man (x 0) (x 1) in
  ignore (Bdd.dor man f (x 2));
  let s = Bdd.snapshot man in
  (* live and interned agree before any gc (plus the terminal) *)
  Util.checki "live = interned + terminal before gc"
    (s.Bdd.Stats.interned_total + 1) s.Bdd.Stats.live_nodes;
  ignore (Bdd.gc man);
  let s' = Bdd.snapshot man in
  Util.checkb "gc separates live from interned"
    (s'.Bdd.Stats.live_nodes < s'.Bdd.Stats.interned_total + 1);
  Util.checkb "peak is sticky"
    (s'.Bdd.Stats.peak_live_nodes >= s.Bdd.Stats.live_nodes);
  Util.checkb "one-line stats mentions live and gc"
    (Util.contains (Bdd.stats man) "live="
     && Util.contains (Bdd.stats man) "gc_runs=1")

let sat_count_undersized_space () =
  let man = Util.man in
  let x i = Bdd.ithvar man i in
  let f = Bdd.dand man (x 0) (Bdd.dand man (x 1) (x 2)) in
  Util.checkb "raises on nvars < support size"
    (match Bdd.sat_count man f ~nvars:2 with
     | exception Invalid_argument _ -> true
     | _ -> false);
  Util.checkb "exact support size is fine"
    (Bdd.sat_count man f ~nvars:3 = 1.0);
  (* non-contiguous support: 2 variables with a large top index is legal
     over any 2-dimensional space *)
  let g = Bdd.dand man (x 0) (x 9) in
  Util.checkb "sparse support counts by dimension"
    (Bdd.sat_count man g ~nvars:2 = 1.0)

let cube_interning () =
  let man = Bdd.create () in
  Util.checki "sorted/deduped identity"
    (Bdd.cube_id man [ 3; 1; 2; 1 ])
    (Bdd.cube_id man [ 1; 2; 3 ]);
  Util.checkb "distinct sets get distinct ids"
    (Bdd.cube_id man [ 1; 2 ] <> Bdd.cube_id man [ 1; 2; 3 ]);
  let n = Bdd.interned_sets man in
  ignore (Bdd.cube_id man [ 2; 3; 1 ]);
  Util.checki "re-interning allocates nothing" n (Bdd.interned_sets man);
  ignore (Bdd.cube_id man [ 7 ]);
  Util.checkb "a new set is counted" (Bdd.interned_sets man > n);
  Util.checki "snapshot reports the same counter"
    (Bdd.interned_sets man)
    (Bdd.snapshot man).Bdd.Stats.interned_cubes

let quantify_cache_persists () =
  let man = Bdd.create () in
  let f = Tt.to_bdd man (tt_of_seed 6 0xbeef) in
  let g = Bdd.exists man [ 0; 2; 4 ] f in
  let s1 = Bdd.snapshot man in
  Util.checkb "first exists recursed" (s1.Bdd.Stats.quantify_recursions > 0);
  (* same cube, same operand: the packed cache answers at the root, so
     the recursion counter must not move — this is the persistence the
     per-call Hashtbl scheme could not provide *)
  let g' = Bdd.exists man [ 0; 2; 4 ] f in
  let s2 = Bdd.snapshot man in
  Util.checkb "same result" (Bdd.equal g g');
  Util.checki "second identical exists adds no recursions"
    s1.Bdd.Stats.quantify_recursions s2.Bdd.Stats.quantify_recursions;
  (* a different cube over the same operand is a different key *)
  ignore (Bdd.exists man [ 1; 3 ] f);
  let s3 = Bdd.snapshot man in
  Util.checkb "different cube recomputes"
    (s3.Bdd.Stats.quantify_recursions > s2.Bdd.Stats.quantify_recursions)

let and_exists_counted () =
  let man = Bdd.create () in
  let f = Tt.to_bdd man (tt_of_seed 6 0x1234) in
  let g = Tt.to_bdd man (tt_of_seed 6 0x5678) in
  let r = Bdd.and_exists man [ 0; 1; 2 ] f g in
  Util.checkb "fused = exists of and"
    (Bdd.equal r (Bdd.exists man [ 0; 1; 2 ] (Bdd.dand man f g)));
  let s = Bdd.snapshot man in
  Util.checkb "and_exists kernel counted"
    (s.Bdd.Stats.and_exists_recursions > 0);
  (* the fused walk persists too *)
  ignore (Bdd.and_exists man [ 0; 1; 2 ] f g);
  Util.checki "repeat is answered from the cache"
    s.Bdd.Stats.and_exists_recursions
    (Bdd.snapshot man).Bdd.Stats.and_exists_recursions

let clear_caches_keeps_nodes () =
  let man = Bdd.create () in
  let x i = Bdd.ithvar man i in
  let f = Bdd.dand man (x 0) (x 1) in
  let live = (Bdd.snapshot man).Bdd.Stats.live_nodes in
  Bdd.clear_caches man;
  let s = Bdd.snapshot man in
  Util.checki "unique table untouched" live s.Bdd.Stats.live_nodes;
  Util.checki "cache emptied" 0 s.Bdd.Stats.cache_entries;
  Util.checkb "canonicity kept"
    (Bdd.uid (Bdd.dand man (x 0) (x 1)) = Bdd.uid f)

let suite =
  [
    tiny_cache_differential;
    forced_gc_differential;
    kernel_vs_ite_differential;
    canonicity_after_gc_churn;
    Alcotest.test_case "kernel counters and cache sharing" `Quick
      kernel_counters;
    Alcotest.test_case "gc reclaims, roots survive" `Quick
      gc_reclaims_and_roots_survive;
    Alcotest.test_case "with_root protects" `Quick with_root_protects;
    Alcotest.test_case "eviction counters" `Quick eviction_counters;
    Alcotest.test_case "cache growth bounded" `Quick cache_growth_bounded;
    Alcotest.test_case "auto gc triggers" `Quick auto_gc_triggers;
    Alcotest.test_case "stats labels honest" `Quick stats_labels_honest;
    Alcotest.test_case "stats delta windows" `Quick stats_delta;
    Alcotest.test_case "sat_count rejects undersized space" `Quick
      sat_count_undersized_space;
    Alcotest.test_case "cube interning" `Quick cube_interning;
    Alcotest.test_case "quantify cache persists across calls" `Quick
      quantify_cache_persists;
    Alcotest.test_case "and_exists counted and cached" `Quick
      and_exists_counted;
    Alcotest.test_case "clear_caches keeps nodes" `Quick
      clear_caches_keeps_nodes;
  ]
