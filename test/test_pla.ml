(* PLA reader/writer and the espresso-lite minimization flow. *)

module Pla = Logic.Pla
module I = Minimize.Ispec

let man = Util.man

let seven_seg_e = {|
# segment e of a BCD 7-segment decoder
.i 4
.o 1
.ilb b3 b2 b1 b0
.ob e
.type fd
0000 1
0100 1
0110 1
0001 1
1010 -
1100 -
1110 -
1001 -
1011 -
1111 -
.e
|}

(* In our leaf-of-strings convention above, the first .ilb label is BDD
   variable 0.  Digits are written MSB-first in the rows: 2 = 0100 means
   b3=0 b2=1 b1=0 b0=0. *)

let parse_seven_seg () =
  match Pla.parse seven_seg_e with
  | Error e -> Alcotest.fail e
  | Ok pla ->
    Util.checki "inputs" 4 pla.Pla.num_inputs;
    Util.checki "outputs" 1 pla.Pla.num_outputs;
    Alcotest.(check (list string)) "labels" [ "b3"; "b2"; "b1"; "b0" ]
      pla.Pla.input_labels;
    Util.checki "rows" 10 (List.length pla.Pla.rows);
    let fns = Pla.functions man pla in
    (match fns with
     | [ ("e", (f, c)) ] ->
       (* 6 DC points (10..15) *)
       Util.checkb "care has 10 points"
         (Bdd.sat_count man c ~nvars:4 = 10.0);
       Util.checkb "onset has 4 points"
         (Bdd.sat_count man (Bdd.dand man f c) ~nvars:4 = 4.0)
     | _ -> Alcotest.fail "expected one output")

let minimization_flow () =
  match Pla.parse seven_seg_e with
  | Error e -> Alcotest.fail e
  | Ok pla ->
    let fns = Pla.functions man pla in
    let covers =
      List.map
        (fun (name, (f, c)) ->
           let inst = I.make ~f ~c in
           let isop = Minimize.Isop.compute man inst in
           Util.checkb (name ^ " covers") (I.is_cover man inst isop.Minimize.Isop.cover);
           (name, isop.Minimize.Isop.cubes))
        fns
    in
    let out = Pla.of_covers ~num_inputs:pla.Pla.num_inputs covers in
    (* fewer product terms than the original specification *)
    Util.checkb "fewer rows"
      (List.length out.Pla.rows < List.length pla.Pla.rows);
    (* round trip: reparse and compare onsets on the care set *)
    (match Pla.parse (Pla.print out) with
     | Error e -> Alcotest.fail e
     | Ok out' ->
       let orig = List.assoc "e" fns in
       (match Pla.functions man out' with
        | [ (_, (f', _)) ] ->
          let f, c = orig in
          Util.checkb "agrees on care"
            (Bdd.is_zero (Bdd.conj man [ Bdd.dxor man f f'; c ]))
        | _ -> Alcotest.fail "bad round trip"))

let combined_row_format () =
  (* rows may glue input and output planes together *)
  let text = ".i 2\n.o 1\n11 1\n001\n.e\n" in
  match Pla.parse text with
  | Ok pla -> Util.checki "two rows" 2 (List.length pla.Pla.rows)
  | Error e -> Alcotest.fail e

let type_f_and_fr () =
  let base typ second =
    ".i 2\n.o 1\n" ^ typ ^ "11 1\n10 " ^ second ^ "\n.e\n"
  in
  (* type f: only the onset is specified; everything else is offset *)
  (match Pla.parse (base ".type f\n" "1") with
   | Ok pla -> (
       match Pla.functions man pla with
       | [ (_, (f, c)) ] ->
         Util.checkb "full care" (Bdd.is_one c);
         Util.checkb "onset = 2 points" (Bdd.sat_count man f ~nvars:2 = 2.0)
       | _ -> Alcotest.fail "one output")
   | Error e -> Alcotest.fail e);
  (* type fr: care = on + off *)
  (match Pla.parse (base ".type fr\n" "4") with
   | Ok pla -> (
       match Pla.functions man pla with
       | [ (_, (f, c)) ] ->
         Util.checkb "care = 2 points" (Bdd.sat_count man c ~nvars:2 = 2.0);
         Util.checkb "onset in care" (Bdd.leq man (Bdd.dand man f c) c)
       | _ -> Alcotest.fail "one output")
   | Error e -> Alcotest.fail e)

let inconsistent_rejected () =
  let text = ".i 1\n.o 1\n.type fr\n1 1\n1 4\n.e\n" in
  match Pla.parse text with
  | Ok pla ->
    Util.checkb "raises"
      (match Pla.functions man pla with
       | exception Invalid_argument _ -> true
       | _ -> false)
  | Error e -> Alcotest.fail e

let malformed_rejected () =
  List.iter
    (fun (what, text) ->
       Util.checkb what (Result.is_error (Pla.parse text)))
    [
      ("no .i", ".o 1\n1 1\n.e\n");
      ("bad width", ".i 2\n.o 1\n111 1\n.e\n");
      ("bad char", ".i 2\n.o 1\n1x 1\n.e\n");
      ("bad type", ".i 1\n.o 1\n.type zz\n1 1\n.e\n");
      ("ilb arity", ".i 2\n.o 1\n.ilb a\n11 1\n.e\n");
    ]

let random_roundtrip =
  Util.qtest ~count:80 "ISOP -> PLA -> functions round trip"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let isop = Minimize.Isop.compute man s in
       let pla =
         Pla.of_covers ~num_inputs:5 [ ("f", isop.Minimize.Isop.cubes) ]
       in
       match Pla.parse (Pla.print pla) with
       | Error _ -> false
       | Ok pla' -> (
           match Pla.functions man pla' with
           | [ (_, (f', _)) ] -> Bdd.equal f' isop.Minimize.Isop.cover
           | _ -> false))

let suite =
  [
    Alcotest.test_case "parse 7-segment PLA" `Quick parse_seven_seg;
    Alcotest.test_case "espresso-lite flow" `Quick minimization_flow;
    Alcotest.test_case "combined row format" `Quick combined_row_format;
    Alcotest.test_case "types f and fr" `Quick type_f_and_fr;
    Alcotest.test_case "inconsistent fr rejected" `Quick inconsistent_rejected;
    Alcotest.test_case "malformed rejected" `Quick malformed_rejected;
    random_roundtrip;
  ]
