.PHONY: all build test bench-smoke bench-json bench-diff serve-smoke check clean

all: build

build:
	dune build @all

test: build
	dune runtest

# A ~10 second end-to-end benchmark run: quick suite, capped calls, no
# Bechamel microbenchmarks, a small serve load-generation phase.
# Exercises capture, every minimizer, the table renderers, the engine
# statistics/GC path, the CBDD ablation and the daemon scheduler.
bench-smoke: build
	BDDMIN_BENCH_QUICK=1 BDDMIN_BENCH_SKIP_MICRO=1 BDDMIN_BENCH_CALLS=30 \
	BDDMIN_BENCH_SERVE_CLIENTS=2 BDDMIN_BENCH_SERVE_REQUESTS=20 \
		dune exec bench/main.exe

# Regenerate the committed perf baseline (schema bddmin-bench-engine/8;
# see Harness.Bench_json).  Deterministic apart from the wall-time
# fields and the serve section, at any -j.
bench-json: build
	dune exec -- bddmin bench -o BENCH_engine.json

# Fresh full capture into _build, diffed against the committed baseline
# (percentage thresholds on phase seconds, the engine work counters and
# the serve throughput/latency; see scripts/bench_diff.py).  Non-fatal
# by default; STRICT=1 gates.
bench-diff: build
	dune exec -- bddmin bench -o _build/BENCH_fresh.json
	python3 scripts/bench_diff.py BENCH_engine.json _build/BENCH_fresh.json \
		$(if $(STRICT),--strict)

# The serve daemon end to end as separate processes: start it on a
# throwaway unix socket with the Prometheus listener and flight
# recorder on, ping it, drive a small load with explain telemetry,
# scrape /metrics, trigger a SIGUSR1 flight dump, shut it down over
# the wire.
serve-smoke: build
	@rm -f _build/serve-smoke.sock _build/serve-smoke-flight.json
	dune exec -- bddmin serve --unix _build/serve-smoke.sock --workers 2 \
		--metrics-addr 127.0.0.1:9464 \
		--flight-dump _build/serve-smoke-flight.json & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		[ -S _build/serve-smoke.sock ] && break; sleep 0.1; done; \
	dune exec -- bddmin serve-ctl ping --connect _build/serve-smoke.sock && \
	dune exec -- bddmin serve-bench --connect _build/serve-smoke.sock \
		--clients 2 --requests 30 --explain && \
	curl -sf http://127.0.0.1:9464/metrics \
		| grep -q '^bddmin_serve_requests_total' && \
	kill -USR1 $$pid && \
	for i in $$(seq 1 50); do \
		[ -s _build/serve-smoke-flight.json ] && break; sleep 0.1; done; \
	[ -s _build/serve-smoke-flight.json ] && \
	dune exec -- bddmin serve-ctl metrics --connect _build/serve-smoke.sock \
		> /dev/null && \
	dune exec -- bddmin serve-ctl shutdown --connect _build/serve-smoke.sock; \
	status=$$?; wait; exit $$status

check: build test bench-smoke

clean:
	dune clean
