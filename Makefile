.PHONY: all build test bench-smoke bench-json bench-diff check clean

all: build

build:
	dune build @all

test: build
	dune runtest

# A ~10 second end-to-end benchmark run: quick suite, capped calls, no
# Bechamel microbenchmarks.  Exercises capture, every minimizer, the
# table renderers and the engine statistics/GC path.
bench-smoke: build
	BDDMIN_BENCH_QUICK=1 BDDMIN_BENCH_SKIP_MICRO=1 BDDMIN_BENCH_CALLS=30 \
		dune exec bench/main.exe

# Regenerate the committed perf baseline (schema bddmin-bench-engine/3;
# see Harness.Bench_json).  Deterministic apart from the wall-time
# fields, at any -j.
bench-json: build
	dune exec -- bddmin bench -o BENCH_engine.json

# Fresh full capture into _build, diffed against the committed baseline
# (percentage thresholds on phase seconds and the engine work counters;
# see scripts/bench_diff.py).  Non-fatal by default; STRICT=1 gates.
bench-diff: build
	dune exec -- bddmin bench -o _build/BENCH_fresh.json
	python3 scripts/bench_diff.py BENCH_engine.json _build/BENCH_fresh.json \
		$(if $(STRICT),--strict)

check: build test bench-smoke

clean:
	dune clean
