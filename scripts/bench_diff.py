#!/usr/bin/env python3
"""Compare two BENCH_engine.json documents (committed baseline vs fresh).

Schema-aware: accepts bddmin-bench-engine/1 through /6 on either side
and compares only what both documents carry.  Reports percentage
deltas on phase wall times, the engine's work counters, and
per-minimizer size and time totals.  From schema /3 on, documents carry
the resource limits (node/step/time budgets) and DNF rows — runs with
different limits are never gated against each other, and the capture
phase has its own (tight) threshold because the governance checks are
supposed to cost nearly nothing when no budget is set.  From schema /4
on, documents may carry a "serve" section (daemon load-generation
throughput and tail latency); its deltas are reported with generous
thresholds since wall-clock latency on shared CI machines is noisy —
p50, p95 and p99 all gate against the serve threshold.  Schema /5
splits serve replies into per-status counts and adds a "telemetry"
object of server-side phase means; error replies always gate, and a
rising error *rate* or dnf rate between comparable runs gates too.
Schema /6 adds busy_replies (backpressure refusals — reported, never
gated as errors) and a "server" object of scraped daemon counters;
between comparable /6 runs the result-cache hit rate gates against a
relative drop past the serve threshold.  Schema /7 adds a "parallel"
object — shared-store concurrent-manager telemetry plus the
seq-vs-par timing of the parallel reachability workload; its
"identical" flag (parallel results byte-identical to sequential)
always gates, while the timing fields are reported ungated (a
single-CPU host cannot demonstrate speedup).  Schema /8 adds the
top-level "repr" (node representation of the run: "bdd" or "cbdd"),
per-minimizer total_chain_size, and a "cbdd" ablation object.  Runs
whose repr differs are never gated against each other (chain-reduced
managers do different amounts of per-node work), and the ablation's
verdicts_identical flag gates unconditionally — the chain-reduced
representation diverging from plain on any minimization verdict is a
correctness bug.

Exit status is 0 unless --strict is given AND a gated regression was
found AND the two runs were actually comparable (same jobs / quick /
max_calls / image / limits configuration) — CI runs this non-fatally on
a quick smoke capture, where only the report is wanted.

usage: bench_diff.py BASELINE FRESH [--time-threshold PCT]
                                    [--count-threshold PCT]
                                    [--capture-threshold PCT]
                                    [--serve-threshold PCT] [--strict]
"""

import argparse
import json
import sys

SCHEMAS = (
    "bddmin-bench-engine/1",
    "bddmin-bench-engine/2",
    "bddmin-bench-engine/3",
    "bddmin-bench-engine/4",
    "bddmin-bench-engine/5",
    "bddmin-bench-engine/6",
    "bddmin-bench-engine/7",
    "bddmin-bench-engine/8",
)

# Counters that measure algorithmic work (deterministic for a given
# configuration); capacities, live-node and hit-rate fields are
# reported but never gated.
WORK_COUNTERS = (
    "ite_recursions",
    "and_recursions",
    "xor_recursions",
    "constrain_recursions",
    "restrict_recursions",
    "quantify_recursions",
    "and_exists_recursions",
    "cache_lookups",
)

# Configuration keys that must match for timings/counters to be
# comparable.  "image" only exists from schema /2 on, "limits" (the
# resource budgets) from /3 on, "repr" (the node representation) from
# /8 on — a pre-/8 baseline is implicitly a plain-"bdd" run, so a
# missing repr only mismatches a fresh "cbdd" one.
CONFIG_KEYS = ("jobs", "quick", "max_calls", "image", "limits", "repr")


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        sys.exit(f"{path}: unknown schema {schema!r} (expected one of {SCHEMAS})")
    return doc


def pct(old, new):
    if old == 0:
        return None
    return 100.0 * (new - old) / old


def fmt_pct(p):
    return "   n/a" if p is None else f"{p:+6.1f}%"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--time-threshold", type=float, default=25.0,
                    help="max tolerated %% increase in phase seconds (default 25)")
    ap.add_argument("--count-threshold", type=float, default=10.0,
                    help="max tolerated %% increase in work counters (default 10)")
    ap.add_argument("--capture-threshold", type=float, default=3.0,
                    help="max tolerated %% increase in capture seconds "
                         "(default 3; the budget checks must be ~free)")
    ap.add_argument("--serve-threshold", type=float, default=40.0,
                    help="max tolerated %% throughput drop / p95 latency "
                         "increase in the serve section (default 40; "
                         "tail latency on shared machines is noisy)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on gated regressions (comparable runs only)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    comparable = True
    for key in CONFIG_KEYS:
        b, f = base.get(key), fresh.get(key)
        if key == "repr":
            # pre-/8 documents are implicitly plain-"bdd" runs
            b, f = b or "bdd", f or "bdd"
        if b is not None and f is not None and b != f:
            print(f"note: {key} differs (baseline {b!r}, fresh {f!r})")
            comparable = False
    if base["schema"] != fresh["schema"]:
        print(f"note: schemas differ (baseline {base['schema']},"
              f" fresh {fresh['schema']})")
    if not comparable:
        print("note: configurations differ — reporting deltas without gating\n")

    regressions = []

    print(f"{'phase':<24}{'baseline':>14}{'fresh':>14}   delta")
    base_phases = {p["name"]: p["seconds"] for p in base["phases"]}
    for p in fresh["phases"]:
        name, new = p["name"], p["seconds"]
        old = base_phases.get(name)
        if old is None:
            print(f"{name:<24}{'—':>14}{new:>13.3f}s   (new phase)")
            continue
        d = pct(old, new)
        print(f"{name:<24}{old:>13.3f}s{new:>13.3f}s  {fmt_pct(d)}")
        threshold = (args.capture_threshold if name == "capture"
                     else args.time_threshold)
        if d is not None and d > threshold:
            regressions.append(f"phase {name}: {d:+.1f}% seconds"
                               f" (threshold {threshold:.0f}%)")

    print(f"\n{'engine counter':<24}{'baseline':>14}{'fresh':>14}   delta")
    be, fe = base["engine"], fresh["engine"]
    for key in WORK_COUNTERS:
        if key not in be or key not in fe:
            continue  # counter introduced by a later schema
        old, new = be[key], fe[key]
        d = pct(old, new)
        print(f"{key:<24}{old:>14}{new:>14}  {fmt_pct(d)}")
        if d is not None and d > args.count_threshold:
            regressions.append(f"counter {key}: {d:+.1f}%")

    # Schema /3: did-not-finish rows.  A budgeted run with DNFs has
    # incomparable minimizer totals (they skip the starved calls), so
    # note them and keep the size gate off.
    base_dnf, fresh_dnf = base.get("dnf", []), fresh.get("dnf", [])
    if base_dnf or fresh_dnf:
        print(f"\nDNF rows: baseline {len(base_dnf)}, fresh {len(fresh_dnf)}")
        for row in fresh_dnf:
            print(f"  fresh: {row['bench']} DNF({row['reason']})")

    # Schema /4: serve section (null when the phase was skipped, absent
    # before /4).  Throughput should not drop and tail latency should not
    # grow — but both are wall-clock on possibly shared machines, so the
    # gate is generous and only applies when the load shapes match.
    base_srv, fresh_srv = base.get("serve"), fresh.get("serve")

    def reply_rate(srv, key):
        """Per-request rate of a /5 reply-status count, None pre-/5."""
        if srv is None or key not in srv or not srv.get("requests"):
            return None
        return srv[key] / srv["requests"]

    if fresh_srv and not base_srv:
        print("\nserve: no baseline section — reporting fresh only")
        print(f"  {fresh_srv['clients']} clients x {fresh_srv['requests']} req:"
              f" {fresh_srv['requests_per_sec']:.1f} req/s,"
              f" p50 {fresh_srv['p50_ms']:.2f}ms p95 {fresh_srv['p95_ms']:.2f}ms"
              f" p99 {fresh_srv['p99_ms']:.2f}ms,"
              f" {fresh_srv['dnf_replies']} DNF {fresh_srv['error_replies']} err")
    elif base_srv and fresh_srv:
        same_load = all(base_srv[k] == fresh_srv[k]
                        for k in ("clients", "requests", "workers"))
        print(f"\n{'serve':<24}{'baseline':>14}{'fresh':>14}   delta")
        for key, higher_is_better in (("requests_per_sec", True),
                                      ("p50_ms", False), ("p95_ms", False),
                                      ("p99_ms", False), ("mean_ms", False)):
            old, new = base_srv[key], fresh_srv[key]
            d = pct(old, new)
            print(f"{key:<24}{old:>14.2f}{new:>14.2f}  {fmt_pct(d)}")
            if not (comparable and same_load) or d is None:
                continue
            if higher_is_better and -d > args.serve_threshold:
                regressions.append(f"serve {key}: {d:+.1f}%"
                                   f" (threshold -{args.serve_threshold:.0f}%)")
            elif key in ("p50_ms", "p95_ms", "p99_ms") \
                    and d > args.serve_threshold:
                regressions.append(f"serve {key}: {d:+.1f}%"
                                   f" (threshold {args.serve_threshold:.0f}%)")
        # Schema /5: per-status reply counts.  Error and dnf *rates* gate
        # on any increase between comparable runs (they are determinism,
        # not wall-clock); pre-/5 baselines lack the counts, so only the
        # fresh side's absolute errors gate then.
        # busy_replies (schema /6) are backpressure refusals, reported
        # but never gated as errors.
        for key in ("ok_replies", "dnf_replies", "partial_replies",
                    "busy_replies", "error_replies"):
            old, new = base_srv.get(key), fresh_srv.get(key)
            if old is None and new is None:
                continue
            print(f"{key:<24}"
                  f"{'—' if old is None else old:>14}"
                  f"{'—' if new is None else new:>14}")
            if key in ("dnf_replies", "error_replies") and comparable \
                    and same_load:
                old_rate = reply_rate(base_srv, key)
                new_rate = reply_rate(fresh_srv, key)
                if old_rate is not None and new_rate is not None \
                        and new_rate > old_rate:
                    regressions.append(
                        f"serve {key} rate: {100 * old_rate:.1f}% ->"
                        f" {100 * new_rate:.1f}% of requests")
        if not same_load:
            print("  (load shapes differ; serve deltas not gated)")
        if fresh_srv["error_replies"]:
            regressions.append(
                f"serve: {fresh_srv['error_replies']} error replies")
        # Schema /5: server-side phase means (reported, never gated —
        # they are sub-slices of the latency already gated above).
        fresh_tel = fresh_srv.get("telemetry")
        if fresh_tel:
            base_tel = base_srv.get("telemetry") or {}
            print(f"  telemetry over {fresh_tel['explained']} explained"
                  " replies (us, server-side means):")
            for key in ("queue_us_mean", "exec_us_mean", "write_us_mean"):
                old, new = base_tel.get(key), fresh_tel[key]
                d = None if old is None else pct(old, new)
                print(f"    {key:<20}"
                      f"{'—' if old is None else format(old, '>12.1f'):>14}"
                      f"{new:>14.1f}  {fmt_pct(d)}")
        # Schema /6: scraped daemon counters.  Cache traffic is
        # deterministic for a given load shape, so the hit rate gates
        # (relative drop past the serve threshold) between comparable
        # runs; the session/batch/busy counters are informational.
        def cache_hit_rate(srv):
            ctr = (srv or {}).get("server")
            if not ctr:
                return None
            hits = ctr["cache_hits"] + ctr["cache_canonical_hits"]
            lookups = hits + ctr["cache_misses"]
            return hits / lookups if lookups else None

        fresh_ctr = fresh_srv.get("server")
        if fresh_ctr:
            base_ctr = base_srv.get("server") or {}
            print("  server counters:")
            for key in ("cache_hits", "cache_canonical_hits", "cache_misses",
                        "cache_collapsed", "cache_evicted", "sessions_opened",
                        "sessions_evicted", "batches", "batched_requests",
                        "busy_replies"):
                old, new = base_ctr.get(key), fresh_ctr[key]
                print(f"    {key:<22}"
                      f"{'—' if old is None else old:>12}{new:>12}")
            old_rate = cache_hit_rate(base_srv)
            new_rate = cache_hit_rate(fresh_srv)
            if new_rate is not None:
                print(f"    cache hit rate: "
                      + ("—" if old_rate is None else f"{100 * old_rate:.1f}%")
                      + f" -> {100 * new_rate:.1f}%")
            if comparable and same_load \
                    and old_rate is not None and new_rate is not None \
                    and old_rate > 0 \
                    and 100.0 * (old_rate - new_rate) / old_rate \
                        > args.serve_threshold:
                regressions.append(
                    f"serve cache hit rate: {100 * old_rate:.1f}% ->"
                    f" {100 * new_rate:.1f}%"
                    f" (threshold -{args.serve_threshold:.0f}%)")

    # Schema /7: parallel-engine section (null when the phase was
    # skipped, absent before /7).  The canonical-identity flag gates
    # unconditionally — a parallel run that diverges from sequential is
    # a correctness bug, not a perf regression.  Timings and contention
    # telemetry are reported only: wall-clock speedup depends on the
    # host's core count.
    base_par, fresh_par = base.get("parallel"), fresh.get("parallel")
    if fresh_par:
        print(f"\n{'parallel':<24}{'baseline':>14}{'fresh':>14}")
        for key in ("jobs", "stripes", "views", "live_nodes",
                    "interned_total", "intern_retries", "gc_runs",
                    "gc_reclaimed", "gc_barrier_waits"):
            old = (base_par or {}).get(key)
            print(f"{key:<24}{'—' if old is None else old:>14}"
                  f"{fresh_par[key]:>14}")
        for key in ("gc_barrier_wait_ms", "seq_seconds", "par_seconds",
                    "speedup"):
            old = (base_par or {}).get(key)
            print(f"{key:<24}"
                  f"{'—' if old is None else format(old, '>12.3f'):>14}"
                  f"{fresh_par[key]:>14.3f}")
        print(f"{'identical':<24}"
              f"{'—' if base_par is None else str(base_par['identical']):>14}"
              f"{str(fresh_par['identical']):>14}")
        if not fresh_par["identical"]:
            regressions.append(
                "parallel: results diverged from sequential run")

    # Schema /8: CBDD ablation section (null when the phase was skipped,
    # absent before /8).  verdicts_identical gates unconditionally — a
    # chain-reduced capture must reach every plain verdict; compression
    # is reported only (it depends on the suite's chain structure).
    base_cbdd, fresh_cbdd = base.get("cbdd"), fresh.get("cbdd")
    if fresh_cbdd:
        print(f"\n{'cbdd ablation':<24}{'baseline':>14}{'fresh':>14}")
        for key in ("calls", "plain_total", "chain_total"):
            old = (base_cbdd or {}).get(key)
            print(f"{key:<24}{'—' if old is None else old:>14}"
                  f"{fresh_cbdd[key]:>14}")
        for key in ("compression", "seconds"):
            old = (base_cbdd or {}).get(key)
            print(f"{key:<24}"
                  f"{'—' if old is None else format(old, '>12.3f'):>14}"
                  f"{fresh_cbdd[key]:>14.3f}")
        print(f"{'verdicts_identical':<24}"
              f"{'—' if base_cbdd is None else str(base_cbdd['verdicts_identical']):>14}"
              f"{str(fresh_cbdd['verdicts_identical']):>14}")
        if not fresh_cbdd["verdicts_identical"]:
            regressions.append(
                "cbdd: minimization verdicts diverged from the plain run")

    base_min = {m["name"]: m for m in base["minimizers"]}
    print(f"\n{'minimizer':<12}{'size':>10}{'sizeΔ':>8}{'seconds':>12}   delta")
    for m in fresh["minimizers"]:
        old = base_min.get(m["name"])
        if old is None:
            continue
        sized = m["total_size"] - old["total_size"]
        d = pct(old["total_seconds"], m["total_seconds"])
        dnf_calls = m.get("dnf_calls", 0) + old.get("dnf_calls", 0)
        print(f"{m['name']:<12}{m['total_size']:>10}{sized:>+8}"
              f"{m['total_seconds']:>11.3f}s  {fmt_pct(d)}"
              + (f"  ({m.get('dnf_calls', 0)} DNF)" if dnf_calls else ""))
        # result sizes are deterministic per configuration: any drift in
        # a comparable run means the minimizers changed behaviour (DNFs
        # on either side make the totals cover different call sets)
        if comparable and not dnf_calls and sized != 0:
            regressions.append(f"minimizer {m['name']}: total_size {sized:+d}")

    if regressions:
        print("\nregressions past thresholds:")
        for r in regressions:
            print(f"  - {r}")
        if args.strict and comparable:
            sys.exit(1)
        if args.strict:
            print("(configurations differ; not gating)")
    else:
        print("\nno regressions past thresholds")


if __name__ == "__main__":
    main()
