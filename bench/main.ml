(* Benchmark harness: regenerates every exhibit of the paper's evaluation
   (§4: Tables 1-4 and Figure 3) and times the building blocks with
   Bechamel (one Test.make group per exhibit, plus ablations).

   Command line:
     -j N / --jobs N        run the capture suite on N worker domains
                            (default 1; the result tables are
                            byte-identical at any N)
     --image S              image strategy for the capture suite:
                            monolithic, partitioned, clustered or range
                            (default partitioned; images are exact, so
                            the tables are identical under any strategy)
     --cluster-bound N      node bound for the clustered schedule
     --repr R               node representation for the capture suite:
                            bdd (plain, default) or cbdd (chain-reduced;
                            verdicts are identical, and the tables gain
                            the dual size columns)

   Environment knobs:
     BDDMIN_BENCH_QUICK=1   use the small benchmark sub-suite
     BDDMIN_BENCH_CALLS=N   per-benchmark cap on measured calls (default 250)
     BDDMIN_BENCH_SKIP_MICRO=1  skip the Bechamel microbenchmarks
     BDDMIN_BENCH_JOBS=N    like -j N
     BDDMIN_BENCH_IMAGE=S   like --image S
     BDDMIN_BENCH_CLUSTER_BOUND=N  like --cluster-bound N
     BDDMIN_BENCH_NODE_BUDGET=N   live-node budget for the capture suite
     BDDMIN_BENCH_STEP_BUDGET=N   recursion-step budget per minimizer run
     BDDMIN_BENCH_TIME_BUDGET=S   wall-clock budget in seconds
     BDDMIN_BENCH_FAIL_FAST=1     cancel the suite on the first DNF
     BDDMIN_BENCH_SERVE=0   skip the serve load-generation phase
     BDDMIN_BENCH_PARALLEL=0  skip the shared-store parallel-engine phase
     BDDMIN_BENCH_REPR=R    like --repr R
     BDDMIN_BENCH_CBDD=0    skip the CBDD ablation phase
     BDDMIN_BENCH_SERVE_CLIENTS=N   concurrent loadgen clients (default 4)
     BDDMIN_BENCH_SERVE_REQUESTS=N  requests per client (default 150)
     BDDMIN_BENCH_JSON=PATH where to write the machine-readable baseline
                            (default BENCH_engine.json in the cwd) *)

let () = Obs.Logging.setup ~default:Logs.Info ()

let quick = Sys.getenv_opt "BDDMIN_BENCH_QUICK" = Some "1"
let skip_micro = Sys.getenv_opt "BDDMIN_BENCH_SKIP_MICRO" = Some "1"

let max_calls =
  match Sys.getenv_opt "BDDMIN_BENCH_CALLS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 250)
  | None -> 250

let jobs =
  let from_env =
    match Sys.getenv_opt "BDDMIN_BENCH_JOBS" with
    | Some s -> int_of_string_opt s
    | None -> None
  in
  let rec from_argv = function
    | ("-j" | "--jobs") :: n :: _ -> int_of_string_opt n
    | _ :: rest -> from_argv rest
    | [] -> None
  in
  match from_argv (Array.to_list Sys.argv) with
  | Some n when n >= 1 -> n
  | _ -> ( match from_env with Some n when n >= 1 -> n | _ -> 1)

let image_strategy =
  let from_env = Sys.getenv_opt "BDDMIN_BENCH_IMAGE" in
  let rec from_argv = function
    | "--image" :: s :: _ -> Some s
    | _ :: rest -> from_argv rest
    | [] -> None
  in
  let name =
    match from_argv (Array.to_list Sys.argv) with
    | Some s -> Some s
    | None -> from_env
  in
  match name with
  | None -> Fsm.Image.Partitioned
  | Some s -> (
      match Fsm.Image.strategy_of_name s with
      | Some strategy -> strategy
      | None ->
        Printf.eprintf
          "unknown image strategy %s (expected monolithic, partitioned, \
           clustered or range)\n"
          s;
        exit 2)

let cluster_bound =
  let from_env =
    match Sys.getenv_opt "BDDMIN_BENCH_CLUSTER_BOUND" with
    | Some s -> int_of_string_opt s
    | None -> None
  in
  let rec from_argv = function
    | "--cluster-bound" :: n :: _ -> int_of_string_opt n
    | _ :: rest -> from_argv rest
    | [] -> None
  in
  match from_argv (Array.to_list Sys.argv) with
  | Some n when n >= 1 -> Some n
  | _ -> ( match from_env with Some n when n >= 1 -> Some n | _ -> None)

let env_pos_int name =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> Some n | _ -> None)
  | None -> None

let node_budget = env_pos_int "BDDMIN_BENCH_NODE_BUDGET"
let step_budget = env_pos_int "BDDMIN_BENCH_STEP_BUDGET"

let time_budget =
  match Sys.getenv_opt "BDDMIN_BENCH_TIME_BUDGET" with
  | Some s -> (
      match float_of_string_opt s with
      | Some t when t > 0.0 -> Some t
      | _ -> None)
  | None -> None

let fail_fast = Sys.getenv_opt "BDDMIN_BENCH_FAIL_FAST" = Some "1"

let repr =
  let from_env = Sys.getenv_opt "BDDMIN_BENCH_REPR" in
  let rec from_argv = function
    | "--repr" :: s :: _ -> Some s
    | _ :: rest -> from_argv rest
    | [] -> None
  in
  let name =
    match from_argv (Array.to_list Sys.argv) with
    | Some s -> Some s
    | None -> from_env
  in
  match name with
  | None -> `Bdd
  | Some s -> (
      match Bdd.repr_of_string s with
      | Some r -> r
      | None ->
        Printf.eprintf "unknown representation %s (expected bdd or cbdd)\n" s;
        exit 2)

let json_path =
  Option.value
    (Sys.getenv_opt "BDDMIN_BENCH_JSON")
    ~default:"BENCH_engine.json"

(* Per-phase wall times, in execution order, for the JSON baseline. *)
let phase_times : (string * float) list ref = ref []

let timed_phase name f =
  let r, dt = Obs.Clock.timed f in
  phase_times := !phase_times @ [ (name, dt) ];
  r

(* ----- the experiment: capture all minimization calls ----- *)

let config =
  Harness.Capture.(
    default_config |> with_max_calls max_calls
    |> with_image_strategy image_strategy
    |> with_cluster_bound cluster_bound
    |> with_jobs jobs |> with_node_budget node_budget
    |> with_step_budget step_budget |> with_time_budget time_budget
    |> with_fail_fast fail_fast |> with_repr repr)

let names = Harness.Capture.minimizer_names config

let benches =
  if quick then Circuits.Registry.quick else Circuits.Registry.all

let capture_seconds = ref 0.0

let calls, suite_stats, suite_dnf =
  Printf.printf
    "== Capturing EBM instances from FSM self-equivalence (%d machines, <=%d calls each, %d job%s) ==\n%!"
    (List.length benches) max_calls jobs
    (if jobs = 1 then "" else "s");
  (* progress goes through the default Logs route of [run_suite_stats] *)
  let suite, dt =
    Obs.Clock.timed (fun () ->
        Harness.Capture.run_suite_stats ~config benches)
  in
  let calls = suite.Harness.Capture.suite_calls in
  Printf.printf "   captured %d calls in %.1fs\n\n%!" (List.length calls) dt;
  capture_seconds := dt;
  phase_times := !phase_times @ [ ("capture", dt) ];
  (calls, suite.Harness.Capture.engine, suite.Harness.Capture.suite_dnf)

(* ----- a standard instance pool for the microbenchmarks ----- *)

(* Re-capture a small pool of live instances (manager kept alive).  The
   kept instances are rooted so the manager's automatic garbage collection
   can reclaim everything else between microbenchmark runs. *)
let pool =
  let man = Bdd.create () in
  let pool = ref [] in
  let keep inst =
    if not (Minimize.Ispec.trivial man inst) && List.length !pool < 60 then begin
      Bdd.ref_ man inst.Minimize.Ispec.f;
      Bdd.ref_ man inst.Minimize.Ispec.c;
      pool := inst :: !pool
    end
  in
  List.iter
    (fun name ->
       let b = Option.get (Circuits.Registry.find name) in
       match
         Fsm.Equiv.check_self man
           ~on_instance:(fun ~iteration:_ i -> keep i)
           ~on_image_constrain:(fun ~iteration:_ i -> keep i)
           (b.Circuits.Registry.build ())
       with
       | Fsm.Equiv.Equivalent _ -> ()
       | Fsm.Equiv.Not_equivalent _ -> assert false)
    [ "tlc"; "gray6"; "rnd344" ];
  (man, !pool)

(* ----- Bechamel plumbing ----- *)

open Bechamel
open Toolkit

let run_benchmarks group tests =
  if skip_micro then ()
  else begin
    Printf.printf "-- microbenchmarks: %s --\n%!" group;
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw =
      Benchmark.all cfg instances (Test.make_grouped ~name:group tests)
    in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
    List.iter
      (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> Printf.printf "   %-44s %12.0f ns/run\n" name est
         | _ -> Printf.printf "   %-44s (no estimate)\n" name)
      (List.sort compare rows);
    print_newline ()
  end

let staged = Staged.stage

(* ----- Table 1: matching criteria ----- *)

let table1 () =
  print_endline (Harness.Tables.render_table1 ());
  let man, instances = pool in
  let pairs =
    match instances with
    | a :: b :: rest -> List.combine (a :: b :: rest) (rest @ [ a; b ])
    | _ -> []
  in
  let bench crit =
    Test.make
      ~name:("match_" ^ Minimize.Matching.name crit)
      (staged (fun () ->
           List.iter
             (fun (s1, s2) ->
                ignore (Minimize.Matching.matches man crit s1 s2))
             pairs))
  in
  run_benchmarks "table1-criteria" (List.map bench Minimize.Matching.all)

(* ----- Table 2: sibling heuristics ----- *)

let table2 () =
  print_endline (Harness.Tables.render_table2 ());
  let man, instances = pool in
  let bench h =
    Test.make
      ~name:(Minimize.Sibling.heuristic_name h)
      (staged (fun () ->
           List.iter
             (fun s ->
                (* §4.1.1 fairness: flush the computed cache AND sweep
                   the unique table down to the rooted instances, so no
                   heuristic inherits warm caches or interned
                   intermediates from the one timed before it. *)
                Bdd.clear_caches man;
                ignore (Bdd.gc man);
                ignore (Minimize.Sibling.run_heuristic man h s))
             instances))
  in
  run_benchmarks "table2-sibling-heuristics"
    (List.map bench Minimize.Sibling.all_heuristics)

(* ----- Table 3: the main comparison ----- *)

let table3 () =
  print_endline (Harness.Tables.render_table3 ~names calls);
  print_endline (Harness.Tables.render_per_bench ~dnf:suite_dnf calls);
  print_endline (Harness.Tables.render_lower_bound_summary ~names calls);
  (* dual size columns for chain-reduced captures only, keeping the
     plain exhibits byte-identical *)
  (match repr with
   | `Bdd -> ()
   | `Cbdd -> print_endline (Harness.Tables.render_chain_summary ~names calls));
  let man, instances = pool in
  let bench (e : Minimize.Registry.entry) =
    Test.make ~name:e.name
      (staged (fun () ->
           List.iter
             (fun s ->
                (* §4.1.1 fairness, as in table 2: cold caches and a
                   swept unique table for every timed heuristic. *)
                Bdd.clear_caches man;
                ignore (Bdd.gc man);
                ignore (e.run (Minimize.Ctx.of_man man) s))
             instances))
  in
  run_benchmarks "table3-all-minimizers"
    (List.map bench Minimize.Registry.all)

(* ----- Table 4: head-to-head ----- *)

let table4 () =
  print_endline (Harness.Tables.render_table4 calls);
  run_benchmarks "table4-analysis"
    [
      Test.make ~name:"head_to_head_matrix"
        (staged (fun () ->
             ignore
               (Harness.Stats.head_to_head
                  ~names:
                    [ "f_orig"; "const"; "restr"; "osm_bt"; "tsm_td";
                      "opt_lv"; "min" ]
                  calls)));
    ]

(* ----- Figure 3: robustness curves ----- *)

let figure3 () =
  print_endline (Harness.Tables.render_figure3 calls);
  run_benchmarks "figure3-analysis"
    [
      Test.make ~name:"within_curves"
        (staged (fun () ->
             List.iter
               (fun n ->
                  ignore
                    (Harness.Stats.within_curve ~name:n
                       ~percents:[ 0; 20; 40; 60; 80; 100 ]
                       calls))
               [ "f_orig"; "const"; "restr"; "tsm_td"; "opt_lv" ]));
    ]

(* ----- Ablations beyond the paper's exhibits ----- *)

let ablations () =
  let man, instances = pool in
  print_endline "== Ablations ==\n";
  (* Schedule parameters (the experiment §3.4 leaves open). *)
  let total name run =
    let sum =
      List.fold_left (fun acc s -> acc + Bdd.size man (run s)) 0 instances
    in
    Printf.printf "   %-40s total size %6d\n%!" name sum
  in
  total "constrain" (fun s ->
      Bdd.constrain man s.Minimize.Ispec.f s.Minimize.Ispec.c);
  List.iter
    (fun (w, stop, levels) ->
       let params =
         {
           Minimize.Schedule.default_params with
           Minimize.Schedule.window_size = w;
           stop_top_down = stop;
           use_level_matching = levels;
         }
       in
       total
         (Printf.sprintf "schedule w=%d stop=%d levels=%b" w stop levels)
         (fun s -> Minimize.Schedule.run man ~params s))
    [ (2, 4, false); (4, 6, false); (8, 8, false); (4, 6, true) ];
  (* Clique-cover optimizations of §3.3.2. *)
  List.iter
    (fun (degree, dist) ->
       let params =
         {
           Minimize.Level.default_params with
           Minimize.Level.order_by_degree = degree;
           use_distance_weights = dist;
           set_limit = Some 512;
         }
       in
       total
         (Printf.sprintf "opt_lv degree_order=%b dist_weights=%b" degree dist)
         (fun s -> Minimize.Level.opt_lv man ~params s))
    [ (true, true); (false, true); (true, false); (false, false) ];
  print_newline ();
  (* Static variable orderings (Symbolic.ordering). *)
  List.iter
    (fun bench_name ->
       let b = Option.get (Circuits.Registry.find bench_name) in
       let nl = b.Circuits.Registry.build () in
       let size ordering =
         let m = Bdd.create () in
         Fsm.Symbolic.shared_node_count (Fsm.Symbolic.of_netlist ~ordering m nl)
       in
       Printf.printf
         "   ordering %-10s interleaved=%-6d topological=%-6d inputs_first=%d\n%!"
         bench_name
         (size Fsm.Symbolic.Interleaved)
         (size Fsm.Symbolic.Topological)
         (size Fsm.Symbolic.Inputs_first))
    [ "tlc"; "minmax4"; "rnd344"; "mult4b" ];
  print_newline ();
  (* The §1 resynthesis flow: symbolic size before/after exploiting the
     unreachable-state don't cares. *)
  List.iter
    (fun bench_name ->
       let b = Option.get (Circuits.Registry.find bench_name) in
       let nl = b.Circuits.Registry.build () in
       let man = Bdd.create () in
       let nl2, _ = Fsm.Synth.resynthesize man nl in
       let size nl =
         let m = Bdd.create () in
         Fsm.Symbolic.shared_node_count (Fsm.Symbolic.of_netlist m nl)
       in
       Printf.printf "   resynthesis %-10s %d -> %d nodes\n%!" bench_name
         (size nl) (size nl2))
    [ "bcd2"; "tlc"; "johnson8"; "rnd344" ];
  print_newline ();
  (* Sifting (variable reordering) on the machines' symbolic functions. *)
  List.iter
    (fun bench_name ->
       let b = Option.get (Circuits.Registry.find bench_name) in
       let nl = b.Circuits.Registry.build () in
       let m = Bdd.create () in
       let sym = Fsm.Symbolic.of_netlist m nl in
       let fns =
         Array.to_list sym.Fsm.Symbolic.next_fns
         @ List.map snd sym.Fsm.Symbolic.output_fns
       in
       let before = Bdd.shared_size m fns in
       let _, after = Bdd.Reorder.sift m fns in
       Printf.printf "   sifting %-10s %6d -> %6d nodes\n%!" bench_name before
         after)
    [ "tlc"; "bcd2"; "rnd344"; "minmax4" ];
  print_newline ();
  (* Image strategies. *)
  let bench_image strategy name =
    Test.make ~name
      (staged (fun () ->
           let man = Bdd.create () in
           let sym =
             Fsm.Symbolic.of_netlist man (Circuits.Gray.make ~width:5)
           in
           ignore (Fsm.Reach.reachable ~strategy sym)))
  in
  run_benchmarks "ablation-image-strategies"
    [
      bench_image Fsm.Image.Monolithic "reach_monolithic";
      bench_image Fsm.Image.Partitioned "reach_partitioned";
      bench_image Fsm.Image.Clustered "reach_clustered";
      bench_image Fsm.Image.Range "reach_range";
    ]

(* ----- Per-phase time breakdown ----- *)

(* A separate, small traced run: tracing adds per-window size traversals,
   so the main capture above stays untraced and its timings honest. *)
let phase_breakdown () =
  print_endline "== Per-phase time breakdown (traced capture of tlc) ==\n";
  let b = Option.get (Circuits.Registry.find "tlc") in
  let sink = Obs.Trace.memory () in
  let config =
    Harness.Capture.(default_config |> with_max_calls (min max_calls 50))
  in
  ignore
    (Obs.Trace.with_sink sink (fun () -> Harness.Capture.run_bench ~config b));
  Format.printf "%a@." Obs.Report.pp
    (Obs.Report.of_events (Obs.Trace.events sink));
  Format.printf "@.%a@." Obs.Probe.pp ()

(* ----- Engine statistics of the shared pool manager ----- *)

let engine_stats () =
  let man, _ = pool in
  print_endline "== Engine statistics (instance pool manager) ==\n";
  Format.printf "%a@.@." Bdd.Stats.pp (Bdd.snapshot man);
  let reclaimed = Bdd.gc man in
  let s = Bdd.snapshot man in
  Printf.printf
    "   explicit gc: reclaimed %d dead nodes (%d live remain, %d rooted \
     instances)\n\n"
    reclaimed s.Bdd.Stats.live_nodes s.Bdd.Stats.external_refs

(* ----- Serve phase: in-process daemon load generation ----- *)

let serve_enabled = Sys.getenv_opt "BDDMIN_BENCH_SERVE" <> Some "0"

let serve_clients =
  Option.value (env_pos_int "BDDMIN_BENCH_SERVE_CLIENTS") ~default:4

let serve_requests =
  Option.value (env_pos_int "BDDMIN_BENCH_SERVE_REQUESTS") ~default:150

let serve_stats : Harness.Bench_json.serve_stats option ref = ref None

let serve_phase () =
  Printf.printf
    "== Serve load generation (%d clients x %d requests, in-process daemon) \
     ==\n%!"
    serve_clients serve_requests;
  let stats =
    Serve.Loadgen.run ~clients:serve_clients ~requests:serve_requests
      ~explain:true ()
  in
  Format.printf "%a@.@." Serve.Loadgen.pp stats;
  serve_stats :=
    Some
      {
        Harness.Bench_json.serve_clients = stats.Serve.Loadgen.clients;
        serve_requests = stats.Serve.Loadgen.requests;
        serve_workers = stats.Serve.Loadgen.workers;
        serve_seconds = stats.Serve.Loadgen.seconds;
        serve_rps = stats.Serve.Loadgen.rps;
        serve_p50_ms = stats.Serve.Loadgen.p50_ms;
        serve_p95_ms = stats.Serve.Loadgen.p95_ms;
        serve_p99_ms = stats.Serve.Loadgen.p99_ms;
        serve_mean_ms = stats.Serve.Loadgen.mean_ms;
        serve_ok = stats.Serve.Loadgen.ok;
        serve_dnf = stats.Serve.Loadgen.dnf;
        serve_partial = stats.Serve.Loadgen.partial;
        serve_busy = stats.Serve.Loadgen.busy;
        serve_errors = stats.Serve.Loadgen.errors;
        serve_telemetry =
          Option.map
            (fun (t : Serve.Loadgen.telemetry) ->
               {
                 Harness.Bench_json.serve_explained = t.explained;
                 serve_queue_us_mean = t.queue_us_mean;
                 serve_exec_us_mean = t.exec_us_mean;
                 serve_write_us_mean = t.write_us_mean;
               })
            stats.Serve.Loadgen.telemetry;
        serve_server =
          Option.map
            (fun (c : Serve.Loadgen.server_counters) ->
               {
                 Harness.Bench_json.serve_cache_hits = c.cache_hits;
                 serve_cache_canonical_hits = c.cache_canonical_hits;
                 serve_cache_misses = c.cache_misses;
                 serve_cache_collapsed = c.cache_collapsed;
                 serve_cache_evicted = c.cache_evicted;
                 serve_sessions_opened = c.sessions_opened;
                 serve_sessions_evicted = c.sessions_evicted;
                 serve_batches = c.batches;
                 serve_batched_requests = c.batched_requests;
                 serve_busy_replies = c.busy_replies;
               })
            stats.Serve.Loadgen.server;
      }

(* ----- Parallel engine phase: seq vs par on a shared node store -----

   The same reachability workload runs twice on one shared-store view:
   once sequential, once with the image merges fanned out across a
   worker pool (each task on its own view of the store).  Both runs
   must return the {e same canonical edge} per machine — that identity
   check plus the store's own telemetry (stripes, intern lock retries,
   GC barrier waits) is the [parallel] section of the JSON baseline.
   On a single-CPU host the speedup hovers around 1.0; the section
   still certifies that the concurrent tier ran and matched. *)

let parallel_enabled = Sys.getenv_opt "BDDMIN_BENCH_PARALLEL" <> Some "0"

let parallel_stats : Harness.Bench_json.parallel_stats option ref = ref None

let parallel_phase () =
  let par_jobs = max 2 jobs in
  Printf.printf
    "== Parallel engine (shared store, %d worker domains, seq vs par) ==\n%!"
    par_jobs;
  let stats =
    Harness.Parbench.run ~jobs:par_jobs
      ~progress:(fun line -> Printf.printf "   %s\n%!" line)
      ()
  in
  Printf.printf
    "   seq %.3fs  par %.3fs  speedup %.2fx  (%d stripes, %d intern \
     retries, %d barrier waits)\n\n%!"
    stats.Harness.Bench_json.par_seq_seconds
    stats.Harness.Bench_json.par_par_seconds
    stats.Harness.Bench_json.par_speedup
    stats.Harness.Bench_json.par_stripes
    stats.Harness.Bench_json.par_intern_retries
    stats.Harness.Bench_json.par_barrier_waits;
  parallel_stats := Some stats

(* ----- CBDD ablation: the quick suite under chain reduction -----

   The quick sub-suite is re-captured with every benchmark manager in
   the chain-reduced representation and compared, call by call, against
   the main capture: the minimization verdicts (winning heuristic and
   every plain-equivalent size) must be identical, while the physical
   node counts shrink wherever OR chains compress.  Captures are
   deterministic, so the calls of a shared benchmark line up
   positionally. *)

let cbdd_enabled = Sys.getenv_opt "BDDMIN_BENCH_CBDD" <> Some "0"

let cbdd_stats : Harness.Bench_json.cbdd_stats option ref = ref None

let cbdd_phase () =
  Printf.printf
    "== CBDD ablation (quick suite re-captured under chain reduction) ==\n%!";
  let (suite : Harness.Capture.suite), dt =
    Obs.Clock.timed (fun () ->
        Harness.Capture.run_suite_stats
          ~config:(Harness.Capture.with_repr `Cbdd config)
          Circuits.Registry.quick)
  in
  let ccalls = suite.Harness.Capture.suite_calls in
  let by_bench cs b =
    List.filter (fun (c : Harness.Capture.call) -> c.bench = b) cs
  in
  let verdicts_identical =
    List.for_all
      (fun (b : Circuits.Registry.bench) ->
         let name = b.Circuits.Registry.name in
         let plain = by_bench calls name and chain = by_bench ccalls name in
         List.length plain = List.length chain
         && List.for_all2
              (fun (p : Harness.Capture.call) (c : Harness.Capture.call) ->
                 p.min_size = c.min_size && p.min_name = c.min_name
                 && p.sizes = c.sizes)
              plain chain)
      Circuits.Registry.quick
  in
  let plain_total =
    List.fold_left
      (fun acc (c : Harness.Capture.call) -> acc + c.min_size)
      0 ccalls
  in
  let chain_total =
    List.fold_left
      (fun acc (c : Harness.Capture.call) ->
         acc
         + Option.value ~default:c.min_size
             (List.assoc_opt c.min_name c.chain_sizes))
      0 ccalls
  in
  Printf.printf
    "   %d calls in %.1fs  min total: plain %d, chain-aware %d (%.2fx)  \
     verdicts %s\n\n%!"
    (List.length ccalls) dt plain_total chain_total
    (if chain_total > 0 then
       float_of_int plain_total /. float_of_int chain_total
     else 1.0)
    (if verdicts_identical then "identical" else "DIVERGED");
  cbdd_stats :=
    Some
      {
        Harness.Bench_json.cbdd_calls = List.length ccalls;
        cbdd_plain_total = plain_total;
        cbdd_chain_total = chain_total;
        cbdd_seconds = dt;
        cbdd_verdicts_identical = verdicts_identical;
      }

(* ----- machine-readable baseline: BENCH_engine.json -----

   Schema and field meanings are documented in [Harness.Bench_json]; the
   [engine] section sums the capture suite's per-benchmark manager
   statistics.  Committed snapshots of this file are the perf
   trajectory: every PR regenerates it (make bench-json) and diffs
   against the predecessor. *)

let emit_bench_json path =
  Harness.Bench_json.write ?serve:!serve_stats ?parallel:!parallel_stats
    ?cbdd:!cbdd_stats ~repr ~path ~jobs ~quick ~max_calls
    ~image:(Fsm.Image.strategy_name image_strategy)
    ~limits:config.Harness.Capture.limits
    ~benches:(List.length benches) ~capture_seconds:!capture_seconds
    ~phases:!phase_times ~names ~engine:suite_stats ~dnf:suite_dnf calls;
  Printf.printf "wrote %s\n" path

let () =
  Printf.printf
    "bddmin benchmark harness — reproduction of Shiple et al., DAC 1994\n\
     ===================================================================\n\n";
  timed_phase "table1" table1;
  timed_phase "table2" table2;
  timed_phase "table3" table3;
  timed_phase "table4" table4;
  timed_phase "figure3" figure3;
  timed_phase "ablations" ablations;
  timed_phase "phase_breakdown" phase_breakdown;
  timed_phase "engine_stats" engine_stats;
  if parallel_enabled then timed_phase "parallel" parallel_phase;
  if cbdd_enabled then timed_phase "cbdd" cbdd_phase;
  if serve_enabled then timed_phase "serve" serve_phase;
  emit_bench_json json_path;
  print_endline "done."
