(* bddmin: command-line front end.

   Subcommands: minimize (one instance from Boolean expressions), equiv
   (product-machine equivalence of benchmark circuits or BLIF files),
   reach (reachability statistics), tables (reproduce the paper's
   exhibits), lower-bound, and dot (Graphviz export). *)

open Cmdliner

let ( let* ) r f = Result.bind r f

(* Common verbosity handling (-v / -vv / --verbosity). *)
let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let logs_term = Term.(const setup_logs $ Logs_cli.level ())

(* ----- shared helpers ----- *)

let parse_pair fexpr cexpr =
  let* f_ast =
    Result.map_error (fun e -> "parsing f: " ^ e) (Logic.Bexpr.parse fexpr)
  in
  let* c_ast =
    Result.map_error (fun e -> "parsing c: " ^ e) (Logic.Bexpr.parse cexpr)
  in
  let man = Bdd.create () in
  (* Shared variable environment across both expressions. *)
  let vars =
    List.sort_uniq compare (Logic.Bexpr.vars f_ast @ Logic.Bexpr.vars c_ast)
  in
  let mapping = List.mapi (fun i v -> (v, i)) vars in
  let env name = Bdd.ithvar man (List.assoc name mapping) in
  let f = Logic.Bexpr.to_bdd man ~env f_ast in
  let c = Logic.Bexpr.to_bdd man ~env c_ast in
  Ok (man, mapping, Minimize.Ispec.make ~f ~c)

let pp_cover man mapping g =
  let var_name v =
    match List.find_opt (fun (_, i) -> i = v) mapping with
    | Some (n, _) -> n
    | None -> Printf.sprintf "x%d" v
  in
  if Bdd.is_one g then "1"
  else if Bdd.is_zero g then "0"
  else
    let cubes = Bdd.Cube.all_cubes ~limit:64 man g in
    let cube_str c =
      String.concat " & "
        (List.map
           (fun (v, ph) -> (if ph then "" else "!") ^ var_name v)
           c)
    in
    let s = String.concat " | " (List.map cube_str cubes) in
    if List.length cubes >= 64 then s ^ " | ..." else s

let load_netlist spec =
  match Circuits.Registry.find spec with
  | Some b -> Ok (b.Circuits.Registry.build ())
  | None ->
    if Sys.file_exists spec then Fsm.Blif.parse_file spec
    else
      Error
        (Printf.sprintf
           "unknown benchmark %S (known: %s) and no such file" spec
           (String.concat ", "
              (Circuits.Registry.names Circuits.Registry.all)))

(* Like [load_netlist], but keep the bench record (the capture harness
   wants a name and a build thunk); BLIF files get a synthetic record. *)
let load_bench spec =
  match Circuits.Registry.find spec with
  | Some b -> Ok b
  | None -> (
      match load_netlist spec with
      | Error e -> Error e
      | Ok nl ->
        Ok
          {
            Circuits.Registry.name = Filename.basename spec;
            paper_analog = "-";
            description = "BLIF file " ^ spec;
            build = (fun () -> nl);
          })

(* ----- tracing (--trace FILE) ----- *)

let trace_term =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file of the run; load it \
                 in Perfetto or chrome://tracing.")

let with_trace file k =
  match file with
  | None -> k ()
  | Some path ->
    let oc = open_out path in
    let sink = Obs.Trace.chrome_channel oc in
    Obs.Trace.set_sink sink;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.set_sink Obs.Trace.null;
        Obs.Trace.close sink;
        close_out oc)
      k

(* ----- worker-domain count (-j N) ----- *)

let jobs_term =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Run on $(docv) worker domains (default 1).  Results are \
                 byte-identical at any $(docv): each worker uses a \
                 private BDD manager and outputs are collected in \
                 submission order.")

(* ----- node-representation selection (--repr bdd|cbdd) ----- *)

let repr_term =
  Arg.(value & opt string "bdd"
       & info [ "repr" ] ~docv:"R"
           ~doc:"Node representation: $(b,bdd) (plain ROBDD) or \
                 $(b,cbdd) (chain-reduced: runs of adjacent variables \
                 forming an OR chain collapse into single nodes).  \
                 Verdicts and the reported plain-equivalent sizes are \
                 identical either way; $(b,cbdd) additionally reports \
                 physical chain-aware node counts.")

let resolve_repr s =
  match Bdd.repr_of_string s with
  | Some r -> r
  | None ->
    Printf.eprintf "unknown representation %S (expected bdd or cbdd)\n" s;
    exit 2

(* ----- frontier-minimizer selection (--minimize NAME) ----- *)

let minimizer_term =
  Arg.(value & opt (some string) None
       & info [ "minimize" ] ~docv:"NAME"
           ~doc:"Minimize each reachability frontier with this registry \
                 heuristic (e.g. $(b,const), $(b,restr), $(b,sched), \
                 $(b,opt_lv)) instead of plain constrain.")

(* Unknown names print the valid catalogue and exit 2 (usage error), so
   scripted sweeps over minimizer names fail loudly and fixably. *)
let catalogue_exit name =
  Printf.eprintf "unknown minimizer %S; valid minimizers are:\n  %s\n" name
    (String.concat ", "
       (Minimize.Registry.names Minimize.Registry.extended));
  exit 2

let find_entry name =
  match Minimize.Registry.find name with
  | Some e -> e
  | None -> catalogue_exit name

let resolve_minimizer = function
  | None -> None
  | Some name ->
    let e = find_entry name in
    Some
      (fun man s -> Minimize.Registry.run e (Minimize.Ctx.of_man man) s)

(* ----- resource budgets (--node-budget, --step-budget, --time-budget) ----- *)

let budget_spec_term =
  let node =
    Arg.(value & opt (some int) None
         & info [ "node-budget" ] ~docv:"N"
             ~doc:"Give up when the BDD manager holds more than $(docv) \
                   live nodes.")
  in
  let step =
    Arg.(value & opt (some int) None
         & info [ "step-budget" ] ~docv:"N"
             ~doc:"Give up when an operation budget exceeds $(docv) \
                   recursion steps.")
  in
  let time =
    Arg.(value & opt (some float) None
         & info [ "time-budget" ] ~docv:"SECONDS"
             ~doc:"Give up after $(docv) seconds of wall clock.")
  in
  Term.(const (fun n s t -> (n, s, t)) $ node $ step $ time)

let make_budget (node, step, time) =
  match (node, step, time) with
  | None, None, None -> None
  | _ ->
    Some
      (Bdd.Budget.create ?max_nodes:node ?max_steps:step ?timeout_s:time ())

(* ----- image-strategy selection (--image S, --cluster-bound N) ----- *)

let image_term ?(names = [ "image" ]) default =
  Arg.(value & opt string default
       & info names ~docv:"S"
           ~doc:"Image strategy: $(b,monolithic), $(b,partitioned), \
                 $(b,clustered) or $(b,range).")

let cluster_bound_term =
  Arg.(value & opt (some int) None
       & info [ "cluster-bound" ] ~docv:"N"
           ~doc:"Node bound for the clustered image schedule (default \
                 2000; only the $(b,clustered) strategy reads it).")

let resolve_image_strategy s =
  match Fsm.Image.strategy_of_name s with
  | Some strategy -> strategy
  | None ->
    Printf.eprintf
      "unknown image strategy %s (expected monolithic, partitioned, \
       clustered or range)\n"
      s;
    exit 1

(* ----- minimize ----- *)

let minimize_cmd =
  let run fexpr cexpr heuristic exact =
    match parse_pair fexpr cexpr with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok (man, mapping, inst) ->
      if Bdd.is_zero inst.Minimize.Ispec.c then begin
        Printf.eprintf "error: empty care set\n";
        1
      end
      else begin
        let entries =
          match heuristic with
          | "all" -> Minimize.Registry.all
          | name -> [ find_entry name ]
        in
        let ctx = Minimize.Ctx.of_man man in
        Printf.printf "|f| = %d   c_onset = %.1f%%   lower bound = %d\n"
          (Bdd.size man inst.Minimize.Ispec.f)
          (100.0 *. Minimize.Ispec.c_onset_fraction man inst)
          (Minimize.Lower_bound.compute man inst);
        List.iter
          (fun (e : Minimize.Registry.entry) ->
             let g = Minimize.Registry.run e ctx inst in
             Printf.printf "%-8s size %-4d  %s\n" e.name (Bdd.size man g)
               (pp_cover man mapping g))
          entries;
        if exact then begin
          match Minimize.Exact.minimize man inst with
          | Some r ->
            Printf.printf "%-8s size %-4d  %s   (%d covers tried)\n" "exact"
              r.Minimize.Exact.size
              (pp_cover man mapping r.Minimize.Exact.cover)
              r.Minimize.Exact.covers_tried
          | None ->
            Printf.printf "exact: instance too large for exhaustive search\n"
        end;
        0
      end
  in
  let fexpr =
    Arg.(required & opt (some string) None
         & info [ "f" ] ~docv:"EXPR" ~doc:"Function (e.g. \"a & b | !c\").")
  in
  let cexpr =
    Arg.(required & opt (some string) None
         & info [ "c" ] ~docv:"EXPR" ~doc:"Care set.")
  in
  let heuristic =
    Arg.(value & opt string "all"
         & info [ "heuristic"; "H" ] ~docv:"NAME"
             ~doc:"Heuristic name, or $(b,all).")
  in
  let exact =
    Arg.(value & flag & info [ "exact" ] ~doc:"Also run the exact minimizer.")
  in
  Cmd.v
    (Cmd.info "minimize"
       ~doc:"Minimize one incompletely specified function [f; c]")
    Term.(const run $ fexpr $ cexpr $ heuristic $ exact)

(* ----- lower-bound ----- *)

let lower_bound_cmd =
  let run fexpr cexpr cubes =
    match parse_pair fexpr cexpr with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok (man, _, inst) ->
      let bound, cube =
        Minimize.Lower_bound.witness man ~cube_limit:cubes inst
      in
      Format.printf "lower bound = %d   (witness cube %a)@." bound
        Bdd.Cube.pp cube;
      0
  in
  let fexpr =
    Arg.(required & opt (some string) None & info [ "f" ] ~docv:"EXPR" ~doc:"Function.")
  in
  let cexpr =
    Arg.(required & opt (some string) None & info [ "c" ] ~docv:"EXPR" ~doc:"Care set.")
  in
  let cubes =
    Arg.(value & opt int 1000
         & info [ "cubes" ] ~docv:"N" ~doc:"Cube enumeration limit.")
  in
  Cmd.v
    (Cmd.info "lower-bound" ~doc:"Theorem 7 lower bound for an instance")
    Term.(const run $ fexpr $ cexpr $ cubes)

(* ----- equiv ----- *)

let equiv_cmd =
  let run spec1 spec2 strategy cluster_bound minimizer repr budget trace =
    let strategy = resolve_image_strategy strategy in
    let minimize = resolve_minimizer minimizer in
    let repr = resolve_repr repr in
    match
      let* nl1 = load_netlist spec1 in
      let* nl2 =
        match spec2 with Some s -> load_netlist s | None -> Ok nl1
      in
      Ok (nl1, nl2)
    with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok (nl1, nl2) ->
      let man = Bdd.create ~repr () in
      Bdd.set_budget man (make_budget budget);
      with_trace trace @@ fun () ->
      (match
         Fsm.Equiv.check ~strategy ?cluster_bound ?minimize man nl1 nl2
       with
       | Fsm.Equiv.Equivalent st ->
         Printf.printf
           "EQUIVALENT  (%d iterations, %.0f product states, %d minimization calls)\n"
           st.Fsm.Reach.iterations st.Fsm.Reach.reached_states
           st.Fsm.Reach.minimization_calls;
         0
       | Fsm.Equiv.Not_equivalent { stats; distinguishing_state } ->
         Format.printf
           "NOT EQUIVALENT after %d iterations; distinguishing state %a@."
           stats.Fsm.Reach.iterations Bdd.Cube.pp distinguishing_state;
         1
       | exception Bdd.Budget_exhausted reason ->
         (* no verdict either way: the traversal was cut short *)
         Printf.printf "DNF(%s): %s\n"
           (Bdd.Budget.reason_label reason)
           (Bdd.Budget.reason_message reason);
         3)
  in
  let spec1 =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"MACHINE1" ~doc:"Benchmark name or BLIF file.")
  in
  let spec2 =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"MACHINE2"
             ~doc:"Second machine (default: MACHINE1 against itself).")
  in
  let strategy = image_term ~names:[ "strategy"; "image" ] "range" in
  Cmd.v
    (Cmd.info "equiv" ~doc:"Check product-machine equivalence")
    Term.(
      const (fun () a b c d e f g h -> run a b c d e f g h)
      $ logs_term $ spec1 $ spec2 $ strategy $ cluster_bound_term
      $ minimizer_term $ repr_term $ budget_spec_term $ trace_term)

(* ----- reach ----- *)

let reach_cmd =
  let run spec image cluster_bound jobs minimizer repr budget trace =
    match load_netlist spec with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok nl ->
      let strategy = resolve_image_strategy image in
      let minimize = resolve_minimizer minimizer in
      let repr = resolve_repr repr in
      (* -j N > 1 swaps the private manager for a view of a shared node
         store plus a worker pool: the fixpoint's image merges fan out
         across the pool, each worker on its own view, and the result is
         bit-identical to -j 1 (BDDs are canonical store-wide) *)
      let with_engine k =
        if jobs <= 1 then k (Bdd.create ~repr ()) None
        else begin
          let store = Bdd.Shared.create ~repr () in
          let man = Bdd.Shared.attach store in
          Exec.Pool.with_pool ~jobs @@ fun pool ->
          k man (Some (Fsm.Image.par ~pool ~store))
        end
      in
      with_engine @@ fun man par ->
      let sym = Fsm.Symbolic.of_netlist man nl in
      (* budget the traversal, not the netlist-to-BDD build: the
         fixpoint traps exhaustion and reports a partial result *)
      Bdd.set_budget man (make_budget budget);
      let reached, st =
        with_trace trace @@ fun () ->
        Fsm.Reach.reachable ~strategy ?cluster_bound ?par ?minimize sym
      in
      Printf.printf "%s\n" (Fsm.Netlist.stats nl);
      Printf.printf
        "reachable states: %.0f of %.0f   iterations: %d   |R| = %d nodes\n"
        st.Fsm.Reach.reached_states
        (2.0 ** float_of_int (Fsm.Symbolic.num_state_vars sym))
        st.Fsm.Reach.iterations (Bdd.size man reached);
      (match st.Fsm.Reach.fixpoint with
       | Fsm.Reach.Complete -> 0
       | Fsm.Reach.Partial { reason; _ } ->
         Printf.printf "PARTIAL(%s): %s; the count is a lower bound\n"
           (Bdd.Budget.reason_label reason)
           (Bdd.Budget.reason_message reason);
         3)
  in
  let spec =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"MACHINE" ~doc:"Benchmark name or BLIF file.")
  in
  Cmd.v
    (Cmd.info "reach" ~doc:"Symbolic reachability statistics")
    Term.(
      const (fun () a b c d e f g h -> run a b c d e f g h)
      $ logs_term $ spec $ image_term "partitioned" $ cluster_bound_term
      $ jobs_term $ minimizer_term $ repr_term $ budget_spec_term
      $ trace_term)

(* ----- stats ----- *)

let stats_cmd =
  let analyze cache_bits strategy cluster_bound repr budget nl =
    let buf = Buffer.create 1024 in
    let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let man = Bdd.create ?cache_bits ~repr () in
    let sym = Fsm.Symbolic.of_netlist man nl in
    (* one budget per machine, installed after the netlist-to-BDD build:
       budgets are stateful, managers private, and only the fixpoint
       traps exhaustion into a partial result *)
    Bdd.set_budget man (make_budget budget);
    let reached, st = Fsm.Reach.reachable ~strategy ?cluster_bound sym in
    out "%s\n" (Fsm.Netlist.stats nl);
    let partial =
      match st.Fsm.Reach.fixpoint with
      | Fsm.Reach.Complete -> None
      | Fsm.Reach.Partial { reason; _ } ->
        Some (Bdd.Budget.reason_label reason)
    in
    out "reachability: %.0f states in %d iterations, |R| = %d nodes%s%s\n\n"
      st.Fsm.Reach.reached_states st.Fsm.Reach.iterations
      (Bdd.Metric.plain_equivalent man reached)
      (* both size metrics under the chain-reduced representation; plain
         output is unchanged *)
      (match repr with
       | `Bdd -> ""
       | `Cbdd ->
         Printf.sprintf " (%d chain-aware)" (Bdd.Metric.nodes man reached))
      (match partial with
       | None -> ""
       | Some label -> Printf.sprintf "  [PARTIAL(%s)]" label);
    out "engine statistics after reachability:\n";
    out "%s" (Format.asprintf "%a@.@." Bdd.Stats.pp (Bdd.snapshot man));
    (* Collect everything except the reached set to show how much of
       the table the fixed point no longer needs. *)
    let reclaimed = Bdd.gc ~roots:[ reached ] man in
    let s = Bdd.snapshot man in
    out
      "gc (rooting only the reached set): reclaimed %d dead nodes, %d live\n"
      reclaimed s.Bdd.Stats.live_nodes;
    (Buffer.contents buf, partial <> None)
  in
  let run specs cache_bits image cluster_bound jobs repr budget trace =
    let strategy = resolve_image_strategy image in
    let repr = resolve_repr repr in
    let loaded =
      List.fold_right
        (fun spec acc ->
           let* rest = acc in
           let* nl = load_netlist spec in
           Ok ((spec, nl) :: rest))
        specs (Ok [])
    in
    match loaded with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok machines ->
      with_trace trace @@ fun () ->
      (* Each machine's run is independent (private manager), so with
         [-j N] they proceed on a worker pool; the reports come back in
         argument order and the single-machine output is unchanged. *)
      let reports =
        Exec.map ~jobs
          (fun (_, nl) ->
             analyze cache_bits strategy cluster_bound repr budget nl)
          machines
      in
      (match reports with
       | [ (one, _) ] -> print_string one
       | many ->
         List.iteri
           (fun i ((spec, _), (report, _)) ->
              if i > 0 then print_newline ();
              Printf.printf "== %s ==\n%s" spec report)
           (List.combine machines many));
      if List.exists snd reports then 3 else 0
  in
  let specs =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"MACHINE"
             ~doc:"Benchmark names or BLIF files (one report each).")
  in
  let cache_bits =
    Arg.(value & opt (some int) None
         & info [ "cache-bits" ] ~docv:"N"
             ~doc:"log2 of the initial computed-cache size (default 15).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Engine statistics (cache, GC, recursion counters) for a \
             reachability run")
    Term.(
      const (fun () a b c d e f g h -> run a b c d e f g h)
      $ logs_term $ specs $ cache_bits $ image_term "partitioned"
      $ cluster_bound_term $ jobs_term $ repr_term $ budget_spec_term
      $ trace_term)

(* ----- tables ----- *)

let tables_cmd =
  let run quick out_dir max_calls image cluster_bound jobs repr budget trace =
    let benches =
      if quick then Circuits.Registry.quick else Circuits.Registry.all
    in
    let image_strategy = resolve_image_strategy image in
    let repr = resolve_repr repr in
    let node_budget, step_budget, time_budget = budget in
    let config =
      Harness.Capture.(
        default_config |> with_max_calls max_calls
        |> with_image_strategy image_strategy
        |> with_cluster_bound cluster_bound
        |> with_jobs jobs |> with_node_budget node_budget
        |> with_step_budget step_budget |> with_time_budget time_budget
        |> with_repr repr)
    in
    let suite =
      with_trace trace @@ fun () ->
      Harness.Capture.run_suite_stats ~config
        ~progress:(fun m -> Printf.eprintf "%s\n%!" m)
        benches
    in
    let calls = suite.Harness.Capture.suite_calls in
    let names = Harness.Capture.minimizer_names config in
    print_endline (Harness.Tables.render_table1 ());
    print_endline (Harness.Tables.render_table2 ());
    print_endline (Harness.Tables.render_table3 ~names calls);
    print_endline (Harness.Tables.render_table4 calls);
    print_endline (Harness.Tables.render_figure3 calls);
    print_endline (Harness.Tables.render_lower_bound_summary ~names calls);
    (* dual size columns only for chain-reduced captures: plain output
       stays byte-identical to earlier releases *)
    (match repr with
     | `Bdd -> ()
     | `Cbdd ->
       print_endline (Harness.Tables.render_chain_summary ~names calls));
    (* DNF(reason) rows for budget-exhausted machines, as in the paper's
       tables; absent (and the output unchanged) without budgets. *)
    List.iter
      (fun (bench, reason) -> Printf.printf "%-10s DNF(%s)\n" bench reason)
      suite.Harness.Capture.suite_dnf;
    (match out_dir with
     | Some dir ->
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       let write name contents =
         let oc = open_out (Filename.concat dir name) in
         output_string oc contents;
         close_out oc
       in
       write "calls.csv" (Harness.Tables.calls_to_csv ~names calls);
       write "per_bench.txt"
         (Harness.Tables.render_per_bench
            ~dnf:suite.Harness.Capture.suite_dnf calls);
       write "figure3.csv"
         (Harness.Tables.curve_to_csv
            ~names:[ "f_orig"; "opt_lv"; "const"; "restr"; "tsm_td" ]
            calls);
       Printf.eprintf "CSV data written to %s/\n" dir
     | None -> ());
    0
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Use the small sub-suite.")
  in
  let out_dir =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR" ~doc:"Also write CSV data here.")
  in
  let max_calls =
    Arg.(value & opt int 400
         & info [ "max-calls" ] ~docv:"N"
             ~doc:"Per-benchmark cap on measured calls.")
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Reproduce the paper's tables and figure")
    Term.(
      const (fun () a b c d e f g h i -> run a b c d e f g h i)
      $ logs_term $ quick $ out_dir $ max_calls $ image_term "partitioned"
      $ cluster_bound_term $ jobs_term $ repr_term $ budget_spec_term
      $ trace_term)

(* ----- bench: capture suite + machine-readable baseline ----- *)

(* The bench's serve phase: loadgen stats copied into the plain record
   Bench_json renders (harness has no serve dependency). *)
let serve_phase ~clients ~requests =
  let (stats : Serve.Loadgen.stats), dt =
    Obs.Clock.timed @@ fun () ->
    Serve.Loadgen.run ~clients ~requests ~explain:true ()
  in
  ( {
      Harness.Bench_json.serve_clients = stats.clients;
      serve_requests = stats.requests;
      serve_workers = stats.workers;
      serve_seconds = stats.seconds;
      serve_rps = stats.rps;
      serve_p50_ms = stats.p50_ms;
      serve_p95_ms = stats.p95_ms;
      serve_p99_ms = stats.p99_ms;
      serve_mean_ms = stats.mean_ms;
      serve_ok = stats.ok;
      serve_dnf = stats.dnf;
      serve_partial = stats.partial;
      serve_busy = stats.busy;
      serve_errors = stats.errors;
      serve_telemetry =
        Option.map
          (fun (t : Serve.Loadgen.telemetry) ->
             {
               Harness.Bench_json.serve_explained = t.explained;
               serve_queue_us_mean = t.queue_us_mean;
               serve_exec_us_mean = t.exec_us_mean;
               serve_write_us_mean = t.write_us_mean;
             })
          stats.telemetry;
      serve_server =
        Option.map
          (fun (c : Serve.Loadgen.server_counters) ->
             {
               Harness.Bench_json.serve_cache_hits = c.cache_hits;
               serve_cache_canonical_hits = c.cache_canonical_hits;
               serve_cache_misses = c.cache_misses;
               serve_cache_collapsed = c.cache_collapsed;
               serve_cache_evicted = c.cache_evicted;
               serve_sessions_opened = c.sessions_opened;
               serve_sessions_evicted = c.sessions_evicted;
               serve_batches = c.batches;
               serve_batched_requests = c.batched_requests;
               serve_busy_replies = c.busy_replies;
             })
          stats.server;
    },
    dt )

(* The bench's CBDD ablation: re-capture the quick suite under the
   chain-reduced representation and compare every minimization verdict
   (winner and plain-equivalent sizes) against the corresponding call
   of the main capture.  Captures are deterministic, so the calls of a
   shared benchmark line up positionally. *)
let cbdd_phase ~config ~main_calls ~progress =
  let (suite : Harness.Capture.suite), dt =
    Obs.Clock.timed @@ fun () ->
    Harness.Capture.run_suite_stats
      ~config:(Harness.Capture.with_repr `Cbdd config)
      ~progress Circuits.Registry.quick
  in
  let calls = suite.Harness.Capture.suite_calls in
  let by_bench cs b =
    List.filter (fun (c : Harness.Capture.call) -> c.bench = b) cs
  in
  let verdicts_identical =
    List.for_all
      (fun (b : Circuits.Registry.bench) ->
         let name = b.Circuits.Registry.name in
         let plain = by_bench main_calls name
         and chain = by_bench calls name in
         List.length plain = List.length chain
         && List.for_all2
              (fun (p : Harness.Capture.call) (c : Harness.Capture.call) ->
                 p.min_size = c.min_size && p.min_name = c.min_name
                 && p.sizes = c.sizes)
              plain chain)
      Circuits.Registry.quick
  in
  let plain_total =
    List.fold_left
      (fun acc (c : Harness.Capture.call) -> acc + c.min_size)
      0 calls
  in
  (* the winner's physical size; chains make it <= the plain total *)
  let chain_total =
    List.fold_left
      (fun acc (c : Harness.Capture.call) ->
         acc
         + Option.value ~default:c.min_size
             (List.assoc_opt c.min_name c.chain_sizes))
      0 calls
  in
  ( {
      Harness.Bench_json.cbdd_calls = List.length calls;
      cbdd_plain_total = plain_total;
      cbdd_chain_total = chain_total;
      cbdd_seconds = dt;
      cbdd_verdicts_identical = verdicts_identical;
    },
    dt )

let bench_cmd =
  let run quick max_calls image cluster_bound jobs repr budget fail_fast
      serve_clients serve_requests out trace =
    let repr = resolve_repr repr in
    let benches =
      if quick then Circuits.Registry.quick else Circuits.Registry.all
    in
    let image_strategy = resolve_image_strategy image in
    let node_budget, step_budget, time_budget = budget in
    let config =
      Harness.Capture.(
        default_config |> with_max_calls max_calls
        |> with_image_strategy image_strategy
        |> with_cluster_bound cluster_bound
        |> with_jobs jobs |> with_node_budget node_budget
        |> with_step_budget step_budget |> with_time_budget time_budget
        |> with_fail_fast fail_fast |> with_repr repr)
    in
    Printf.eprintf "capturing %d machines (<=%d calls each, %d job%s)\n%!"
      (List.length benches) max_calls jobs (if jobs = 1 then "" else "s");
    let suite, dt =
      with_trace trace @@ fun () ->
      Obs.Clock.timed @@ fun () ->
      Harness.Capture.run_suite_stats ~config
        ~progress:(fun m -> Printf.eprintf "%s\n%!" m)
        benches
    in
    let calls = suite.Harness.Capture.suite_calls in
    (* the parallel-engine exhibit: seq-vs-par reachability on a shared
       store, at least two worker domains so the concurrent tier is
       actually exercised *)
    Printf.eprintf "parallel phase: %d worker domains\n%!" (max 2 jobs);
    let parallel, par_dt =
      Obs.Clock.timed @@ fun () ->
      Harness.Parbench.run ~jobs:(max 2 jobs)
        ~progress:(fun m -> Printf.eprintf "  %s\n%!" m)
        ()
    in
    Printf.eprintf "cbdd ablation: re-capturing the quick suite\n%!";
    let cbdd, cbdd_dt =
      cbdd_phase ~config ~main_calls:calls
        ~progress:(fun m -> Printf.eprintf "  %s\n%!" m)
    in
    let serve, phases =
      if serve_requests <= 0 then
        (None, [ ("capture", dt); ("parallel", par_dt); ("cbdd", cbdd_dt) ])
      else begin
        Printf.eprintf "serve phase: %d requests over %d clients\n%!"
          serve_requests serve_clients;
        let stats, serve_dt =
          serve_phase ~clients:serve_clients ~requests:serve_requests
        in
        ( Some stats,
          [ ("capture", dt); ("parallel", par_dt); ("cbdd", cbdd_dt);
            ("serve", serve_dt) ] )
      end
    in
    Harness.Bench_json.write ?serve ~parallel ~cbdd ~repr ~path:out ~jobs
      ~quick ~max_calls
      ~image:(Fsm.Image.strategy_name image_strategy)
      ~limits:config.Harness.Capture.limits
      ~benches:(List.length benches) ~capture_seconds:dt ~phases
      ~names:(Harness.Capture.minimizer_names config)
      ~engine:suite.Harness.Capture.engine
      ~dnf:suite.Harness.Capture.suite_dnf calls;
    Printf.printf "captured %d calls in %.1fs%s\nwrote %s\n"
      (List.length calls) dt
      (match suite.Harness.Capture.suite_dnf with
       | [] -> ""
       | dnf -> Printf.sprintf " (%d machines DNF)" (List.length dnf))
      out;
    0
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Use the small sub-suite.")
  in
  let max_calls =
    Arg.(value & opt int 400
         & info [ "max-calls" ] ~docv:"N"
             ~doc:"Per-benchmark cap on measured calls.")
  in
  let fail_fast =
    Arg.(value & flag
         & info [ "fail-fast" ]
             ~doc:"Cancel the remaining machines after the first budget \
                   exhaustion anywhere in the suite.")
  in
  let serve_clients =
    Arg.(value & opt int 4
         & info [ "serve-clients" ] ~docv:"N"
             ~doc:"Concurrent clients for the serve phase (default 4).")
  in
  let serve_requests =
    Arg.(value & opt int 150
         & info [ "serve-requests" ] ~docv:"N"
             ~doc:"Requests for the serve throughput phase (default \
                   150; 0 disables the phase and writes a null serve \
                   section).")
  in
  let out =
    Arg.(value & opt string "BENCH_engine.json"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Where to write the JSON baseline.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run the capture suite and write the BENCH_engine.json baseline"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the paper's capture experiment over the benchmark \
              machines (optionally on several worker domains; the \
              result data is byte-identical at any $(b,-j)) and writes \
              a machine-readable JSON baseline: schema \
              $(b,bddmin-bench-engine/4) with per-minimizer size/time \
              totals, capture wall time, the image strategy, the \
              resource limits with any DNF rows they produced, a serve \
              throughput/latency section (see $(b,--serve-requests)), \
              and the summed engine counters of every benchmark \
              manager.  Under \
              $(b,--node-budget), $(b,--step-budget) or \
              $(b,--time-budget) the run still exits 0: exhausted \
              minimizer runs and machines degrade to DNF rows instead \
              of aborting the suite.";
         ])
    Term.(
      const (fun () a b c d e f g h i j k l -> run a b c d e f g h i j k l)
      $ logs_term $ quick $ max_calls $ image_term "partitioned"
      $ cluster_bound_term $ jobs_term $ repr_term $ budget_spec_term
      $ fail_fast $ serve_clients $ serve_requests $ out $ trace_term)

(* ----- profile ----- *)

let profile_cmd =
  let run spec max_calls self_product =
    match load_bench spec with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok b ->
      (* Capture into a memory ring sized for a full bench run, then fold
         the span stream into a self/total-time table. *)
      let sink = Obs.Trace.memory ~capacity:2_000_000 () in
      Obs.Probe.reset ();
      let config =
        Harness.Capture.(
          default_config |> with_max_calls max_calls
          |> with_self_product self_product)
      in
      let calls =
        Obs.Trace.with_sink sink @@ fun () ->
        Harness.Capture.run_bench ~config b
      in
      Printf.printf "%s: %d measured minimization calls (max %d)\n\n"
        b.Circuits.Registry.name (List.length calls) max_calls;
      Format.printf "%a@." Obs.Report.pp
        (Obs.Report.of_events (Obs.Trace.events sink));
      Printf.printf
        "trace drops: %d from this ring%s, %d process-wide\n"
        (Obs.Trace.dropped sink)
        (if Obs.Trace.dropped sink > 0 then
           " (earliest spans are partial)"
         else "")
        (Obs.Trace.total_dropped ());
      Format.printf "@.%a" Obs.Probe.pp ();
      0
  in
  let spec =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"MACHINE" ~doc:"Benchmark name or BLIF file.")
  in
  let max_calls =
    Arg.(value & opt int 50
         & info [ "max-calls" ] ~docv:"N"
             ~doc:"Per-benchmark cap on measured calls.")
  in
  let self_product =
    Arg.(value & opt bool true
         & info [ "self-product" ] ~docv:"BOOL"
             ~doc:"Profile the product-machine self-equivalence run \
                   (default); $(b,false) profiles plain reachability.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Per-phase self/total-time profile of a capture run"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the capture harness over one machine with an in-memory \
              trace sink and prints where the time went, per span name \
              (schedule windows, sibling and level passes, reachability \
              iterations, each registry minimizer), followed by the \
              engine probes (counters and histograms).";
         ])
    Term.(
      const (fun () a b c -> run a b c)
      $ logs_term $ spec $ max_calls $ self_product)

(* ----- optimize: the paper's second application as a flow ----- *)

let optimize_cmd =
  let run spec heuristic out =
    match load_netlist spec with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok nl ->
      let minimize =
        match heuristic with
        | "clamped-osm_bt" -> None
        | name ->
          let e = find_entry name in
          Some
            (fun man s ->
               Minimize.Registry.run e (Minimize.Ctx.of_man man) s)
      in
      let man = Bdd.create () in
      let nl2, reached = Fsm.Synth.resynthesize ?minimize man nl in
      let shared nl =
        let m = Bdd.create () in
        Fsm.Symbolic.shared_node_count (Fsm.Symbolic.of_netlist m nl)
      in
      Printf.printf "%s\n%s\n" (Fsm.Netlist.stats nl) (Fsm.Netlist.stats nl2);
      Printf.printf
        "reachable states: %.0f   symbolic size: %d -> %d nodes\n"
        (Bdd.sat_count man reached
           ~nvars:(List.length (Fsm.Netlist.latches nl)))
        (shared nl) (shared nl2);
      (match out with
       | Some path ->
         Fsm.Blif.write_file path nl2;
         Printf.printf "wrote %s\n" path
       | None -> ());
      0
  in
  let spec =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"MACHINE" ~doc:"Benchmark name or BLIF file.")
  in
  let heuristic =
    Arg.(value & opt string "clamped-osm_bt"
         & info [ "heuristic"; "H" ] ~docv:"NAME"
             ~doc:"Minimizer for the transition logic (default: size-clamped osm_bt).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o" ] ~docv:"FILE" ~doc:"Write the optimized machine as BLIF.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Minimize a machine's logic against its unreachable states and resynthesize")
    Term.(const run $ spec $ heuristic $ out)

(* ----- pla: espresso-lite two-level minimization ----- *)

let pla_cmd =
  let run path out =
    match Logic.Pla.parse_file path with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | exception Sys_error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok pla ->
      let man = Bdd.create () in
      let fns = Logic.Pla.functions man pla in
      Printf.printf "%d inputs, %d outputs, %d rows (type %s)\n"
        pla.Logic.Pla.num_inputs pla.Logic.Pla.num_outputs
        (List.length pla.Logic.Pla.rows)
        pla.Logic.Pla.typ;
      let covers =
        List.map
          (fun (name, (f, c)) ->
             let inst = Minimize.Ispec.make ~f ~c in
             let isop = Minimize.Isop.compute man inst in
             let _, best =
               Minimize.Registry.best (Minimize.Ctx.of_man man)
                 Minimize.Registry.all inst
             in
             Printf.printf
               "%-8s |f| = %-4d best BDD cover = %-4d isop: %d cubes, %d literals\n"
               name (Bdd.size man f) (Bdd.size man best)
               (List.length isop.Minimize.Isop.cubes)
               (Minimize.Isop.literal_count isop);
             (name, isop.Minimize.Isop.cubes))
          fns
      in
      (match out with
       | Some path' ->
         let minimized =
           Logic.Pla.of_covers ~num_inputs:pla.Logic.Pla.num_inputs
             ~input_labels:pla.Logic.Pla.input_labels covers
         in
         let oc = open_out path' in
         output_string oc (Logic.Pla.print minimized);
         close_out oc;
         Printf.printf "wrote %s (%d rows)\n" path'
           (List.fold_left (fun acc (_, c) -> acc + List.length c) 0 covers)
       | None -> ());
      0
  in
  let path =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"PLA file (espresso format).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o" ] ~docv:"FILE"
             ~doc:"Write the don't-care-minimized ISOP covers as a PLA.")
  in
  Cmd.v
    (Cmd.info "pla"
       ~doc:"Minimize the incompletely specified outputs of a PLA")
    Term.(const run $ path $ out)

(* ----- bench list ----- *)

let benches_cmd =
  let run () =
    List.iter
      (fun (b : Circuits.Registry.bench) ->
         Printf.printf "%-10s %-28s %s\n" b.name b.paper_analog b.description)
      Circuits.Registry.all;
    0
  in
  Cmd.v
    (Cmd.info "benches" ~doc:"List the benchmark machines and their paper analogues")
    Term.(const run $ const ())

(* ----- dot ----- *)

let dot_cmd =
  let run fexpr cexpr out =
    match parse_pair fexpr (Option.value cexpr ~default:"1") with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok (man, mapping, inst) ->
      let var_name v =
        match List.find_opt (fun (_, i) -> i = v) mapping with
        | Some (n, _) -> n
        | None -> Printf.sprintf "x%d" v
      in
      let roots =
        if cexpr = None then [ ("f", inst.Minimize.Ispec.f) ]
        else
          [ ("f", inst.Minimize.Ispec.f); ("c", inst.Minimize.Ispec.c) ]
      in
      let text = Bdd.Dot.to_dot ~var_name man roots in
      (match out with
       | Some path ->
         let oc = open_out path in
         output_string oc text;
         close_out oc
       | None -> print_string text);
      0
  in
  let fexpr =
    Arg.(required & opt (some string) None & info [ "f" ] ~docv:"EXPR" ~doc:"Function.")
  in
  let cexpr =
    Arg.(value & opt (some string) None & info [ "c" ] ~docv:"EXPR" ~doc:"Optional care set.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o" ] ~docv:"FILE" ~doc:"Output path (default stdout).")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export BDDs as Graphviz")
    Term.(const run $ fexpr $ cexpr $ out)

(* ----- serve: the request-scheduling daemon ----- *)

let connect_doc =
  "Server address: $(b,HOST:PORT) for TCP or a unix-socket path."

let connect_opt_term =
  Arg.(value & opt (some string) None
       & info [ "connect" ] ~docv:"ADDR" ~doc:connect_doc)

let connect_req_term =
  Arg.(required & opt (some string) None
       & info [ "connect" ] ~docv:"ADDR" ~doc:connect_doc)

(* --metrics-addr accepts a bare port, HOST:PORT (the host is ignored —
   the listener binds loopback, like the wire port), or a unix-socket
   path. *)
let parse_metrics_addr s =
  match int_of_string_opt s with
  | Some port -> Serve.Server.Tcp port
  | None -> begin
      match String.rindex_opt s ':' with
      | Some i -> begin
          match
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some port -> Serve.Server.Tcp port
          | None -> Serve.Server.Unix_path s
        end
      | None -> Serve.Server.Unix_path s
    end

let serve_cmd =
  let run port unix_path workers metrics_addr flight_capacity flight_dump
      queue_cap max_sessions batch_threshold cache_capacity repr trace =
    let repr = resolve_repr repr in
    let listen =
      match unix_path with
      | Some path -> Serve.Server.Unix_path path
      | None -> Serve.Server.Tcp port
    in
    let workers =
      match workers with
      | Some w -> w
      | None -> max 2 (Exec.recommended_jobs () - 1)
    in
    let metrics = Option.map parse_metrics_addr metrics_addr in
    with_trace trace @@ fun () ->
    let trace_sink =
      match Obs.Trace.sink () with
      | s when s == Obs.Trace.null -> None
      | s -> Some s
    in
    match
      Serve.Server.start ~workers ?trace:trace_sink ?metrics ~flight_capacity
        ~flight_dump ~queue_cap ~max_sessions ~batch_threshold ~cache_capacity
        ~repr listen
    with
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "error: cannot listen on %s: %s\n"
        (match listen with
         | Serve.Server.Tcp p -> Printf.sprintf "127.0.0.1:%d" p
         | Serve.Server.Unix_path p -> p)
        (Unix.error_message e);
      1
    | srv ->
      Printf.printf "bddmin serve: listening on %s (%d workers)%s\n%!"
        (Serve.Server.address srv) workers
        (match Serve.Server.metrics_address srv with
         | Some a -> Printf.sprintf ", metrics on http://%s/metrics" a
         | None -> "");
      let stop_requested = Atomic.make false in
      let dump_requested = Atomic.make false in
      let on_signal _ = Atomic.set stop_requested true in
      List.iter
        (fun s ->
           try Sys.set_signal s (Sys.Signal_handle on_signal)
           with Invalid_argument _ | Sys_error _ -> ())
        [ Sys.sigint; Sys.sigterm ];
      (* SIGUSR1: dump the flight recorder.  The handler only flips a
         flag; the poll loop below does the file I/O, since signal
         handlers must stay async-safe. *)
      (try
         Sys.set_signal Sys.sigusr1
           (Sys.Signal_handle (fun _ -> Atomic.set dump_requested true))
       with Invalid_argument _ | Sys_error _ -> ());
      (* poll so signal handlers get to run; the shutdown op flips the
         server's own flag *)
      while not (Atomic.get stop_requested) && not (Serve.Server.stopping srv)
      do
        (try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        if Atomic.exchange dump_requested false then
          match Serve.Server.dump_flight srv with
          | Some path ->
            Printf.eprintf "bddmin serve: flight recorder dumped to %s\n%!"
              path
          | None ->
            Printf.eprintf "bddmin serve: flight dump failed\n%!"
      done;
      Serve.Server.request_stop srv;
      Serve.Server.wait srv;
      Printf.printf "bddmin serve: stopped\n%!";
      0
  in
  let port =
    Arg.(value & opt int 4224
         & info [ "port" ] ~docv:"PORT"
             ~doc:"TCP port on 127.0.0.1 (default 4224; 0 picks a free \
                   one).  Ignored when $(b,--unix) is given.")
  in
  let unix_path =
    Arg.(value & opt (some string) None
         & info [ "unix" ] ~docv:"PATH"
             ~doc:"Listen on a unix-domain socket at $(docv) instead of \
                   TCP.")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N"
             ~doc:"Compute worker domains (default: cores - 1, at least \
                   2).  Each request runs on a private BDD manager under \
                   its own budget.")
  in
  let metrics_addr =
    Arg.(value & opt (some string) None
         & info [ "metrics-addr" ] ~docv:"ADDR"
             ~doc:"Also serve the Prometheus text exposition over HTTP \
                   at $(docv) (a port, $(b,HOST:PORT), or a unix-socket \
                   path); scrape $(b,/metrics).")
  in
  let flight_capacity =
    Arg.(value & opt int 256
         & info [ "flight-capacity" ] ~docv:"N"
             ~doc:"Keep the last $(docv) request records in the flight \
                   recorder ring (default 256).")
  in
  let flight_dump =
    Arg.(value & opt string "bddmin-flight.json"
         & info [ "flight-dump" ] ~docv:"FILE"
             ~doc:"Where the flight recorder is dumped — on request \
                   errors, on SIGUSR1, and for $(b,serve-ctl dump) \
                   (default $(b,bddmin-flight.json)).")
  in
  let queue_cap =
    Arg.(value & opt int 512
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Bound on admitted-but-unfinished compute requests \
                   (default 512; 0 = unbounded).  Past it the daemon \
                   answers $(b,busy) with a $(b,retry_after_ms) hint \
                   instead of queueing.")
  in
  let max_sessions =
    Arg.(value & opt int 64
         & info [ "max-sessions" ] ~docv:"N"
             ~doc:"Live warm-manager sessions kept across all \
                   connections (default 64); opening past it evicts \
                   the least recently used.")
  in
  let batch_threshold =
    Arg.(value & opt int 4096
         & info [ "batch-threshold" ] ~docv:"BYTES"
             ~doc:"Sessionless minimize payloads at or below $(docv) \
                   bytes are coalesced onto a shared batch manager \
                   (default 4096; 0 disables batching).")
  in
  let cache_capacity =
    Arg.(value & opt int 1024
         & info [ "cache-capacity" ] ~docv:"N"
             ~doc:"Entries in the canonical result cache (default \
                   1024; 0 disables caching).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the minimization daemon"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Accepts minimize / reach / equiv / ping / metrics / dump / \
              shutdown requests as length-prefixed JSON frames (4-byte \
              big-endian length, then the JSON document; see \
              docs/TUTORIAL.md §11 for the message schema).  Each \
              request is scheduled onto a pool of worker domains with a \
              per-request budget; deadlines are fixed at arrival, so \
              time spent queued counts and expired requests return a \
              structured $(b,dnf) reply with reason $(b,time) without \
              disturbing other in-flight work.  SIGINT/SIGTERM (or a \
              client $(b,shutdown) request) stop the daemon: queued \
              jobs are aborted with $(b,dnf cancelled) replies, running \
              jobs drain.";
           `P
             "Telemetry: $(b,--metrics-addr) exposes the typed metrics \
              registry in Prometheus text format; SIGUSR1 dumps the \
              flight recorder (the last $(b,--flight-capacity) request \
              records) to $(b,--flight-dump); requests carrying \
              $(b,\\\"explain\\\": true) receive per-request phase \
              timings, budget consumption and engine stats deltas on \
              the reply; $(b,--trace FILE) streams per-request spans as \
              Chrome trace-event JSON (see docs/TUTORIAL.md §12).";
           `P
             "Throughput: requests are dispatched earliest-deadline-\
              first with per-connection fairness; admitted work is \
              bounded by $(b,--queue-cap) (overload answers $(b,busy) \
              with a $(b,retry_after_ms) hint); repeated payloads hit \
              a canonical result cache ($(b,--cache-capacity)) with \
              in-flight duplicates collapsed onto one execution; small \
              sessionless requests are batched onto a shared manager \
              ($(b,--batch-threshold)); and $(b,session_open) pins a \
              warm manager for a client ($(b,--max-sessions)).  See \
              docs/TUTORIAL.md §13.";
         ])
    Term.(const (fun () a b c d e f g h i j k l -> run a b c d e f g h i j k l)
          $ logs_term $ port $ unix_path $ workers $ metrics_addr
          $ flight_capacity $ flight_dump $ queue_cap $ max_sessions
          $ batch_threshold $ cache_capacity $ repr_term $ trace_term)

let serve_bench_cmd =
  let run connect clients requests workers heuristic seed max_steps
      timeout_ms explain sessions duplicate_rate repr =
    let connect = Option.map Serve.Client.parse_addr connect in
    (* the default sends no repr field at all, deferring to the server *)
    let repr =
      match resolve_repr repr with `Bdd -> None | `Cbdd -> Some `Cbdd
    in
    match
      Serve.Loadgen.run ~clients ~requests ?connect ?workers ~heuristic ~seed
        ?max_steps ?timeout_ms ~explain ~sessions ~duplicate_rate ?repr ()
    with
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "error: %s\n" (Unix.error_message e);
      1
    | stats ->
      Format.printf "%a@." Serve.Loadgen.pp stats;
      if stats.Serve.Loadgen.errors > 0 then 1 else 0
  in
  let clients =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N"
             ~doc:"Concurrent client connections (default 4).")
  in
  let requests =
    Arg.(value & opt int 200
         & info [ "requests" ] ~docv:"N"
             ~doc:"Total minimize requests across all clients (default \
                   200).")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains for the in-process server (ignored \
                   with $(b,--connect)).")
  in
  let heuristic =
    Arg.(value & opt string "sched"
         & info [ "heuristic" ] ~docv:"NAME"
             ~doc:"Registry heuristic each request asks for (default \
                   $(b,sched)).")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N"
             ~doc:"Payload generator seed (default 1).")
  in
  let max_steps =
    Arg.(value & opt (some int) None
         & info [ "max-steps" ] ~docv:"N"
             ~doc:"Per-request recursion-step budget (requests past it \
                   return $(b,dnf) replies).")
  in
  let timeout_ms =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Per-request deadline in milliseconds, fixed at \
                   arrival ($(b,0) = already expired: every request \
                   returns $(b,dnf) with reason $(b,time)).")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Ask the server to attach per-request telemetry to \
                   every reply and report the mean server-side \
                   queue/exec/write phase timings.")
  in
  let sessions =
    Arg.(value & flag
         & info [ "sessions" ]
             ~doc:"Each client opens a warm-manager session once and \
                   runs every minimize against it, measuring the \
                   re-intern-free path.")
  in
  let duplicate_rate =
    Arg.(value & opt float 0.0
         & info [ "duplicate-rate" ] ~docv:"FRACTION"
             ~doc:"Replay one designated payload for this fraction of \
                   requests (default 0), exercising the result cache \
                   and single-flight collapse.")
  in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:"Measure serve throughput and tail latency"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Drives deterministic minimize requests at a serve daemon \
              from concurrent clients and reports requests/sec, \
              p50/p95/p99 latency, and per-status reply counts (ok / \
              dnf / partial / error as separate columns).  Without \
              $(b,--connect) an in-process server on a throwaway unix \
              socket is measured (the same load generator backs the \
              $(b,serve) phase of $(b,bddmin bench)).  $(b,--sessions) \
              and $(b,--duplicate-rate) aim the same deterministic \
              traffic at the daemon's warm-session and result-cache \
              fast paths; the report then includes the server's own \
              cache / session / batch / busy counters scraped at the \
              end of the run.";
         ])
    Term.(const (fun () a b c d e f g h i j k l -> run a b c d e f g h i j k l)
          $ logs_term $ connect_opt_term $ clients $ requests
          $ workers $ heuristic $ seed $ max_steps $ timeout_ms $ explain
          $ sessions $ duplicate_rate $ repr_term)

(* ----- serve-ctl watch: a refreshing terminal view of the registry ----- *)

let json_series f =
  match Serve.Json.mem "series" f with
  | Some (Serve.Json.Arr xs) -> xs
  | _ -> []

let json_label_suffix s =
  match Serve.Json.mem "labels" s with
  | Some (Serve.Json.Obj []) | None -> ""
  | Some (Serve.Json.Obj kvs) ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
              Printf.sprintf "%s=%s" k
                (Option.value ~default:"?" (Serve.Json.to_string v)))
           kvs)
    ^ "}"
  | Some _ -> ""

let json_buckets s =
  match Serve.Json.mem "buckets" s with
  | Some (Serve.Json.Arr xs) ->
    Array.of_list (List.filter_map Serve.Json.to_int xs)
  | _ -> [||]

(* The smallest log2-bucket upper bound below which at least a [q]
   fraction of observations fall — the same le scheme the exposition
   uses (bucket i <= 2^(i+1)-1, last bucket +Inf). *)
let approx_quantile buckets count q =
  if count = 0 then "-"
  else begin
    let target =
      max 1 (int_of_float (ceil (q *. float_of_int count)))
    in
    let cum = ref 0 and result = ref "+Inf" and found = ref false in
    Array.iteri
      (fun i c ->
         cum := !cum + c;
         if (not !found) && !cum >= target then begin
           found := true;
           if i < Array.length buckets - 1 then
             result := string_of_int ((1 lsl (i + 1)) - 1)
         end)
      buckets;
    !result
  end

let watch_render result =
  let fams =
    match Serve.Json.mem "families" result with
    | Some (Serve.Json.Arr fs) -> fs
    | _ -> []
  in
  let fname f = Option.value ~default:"?" (Serve.Json.string_field "name" f) in
  Printf.printf "bddmin serve  uptime %.0f s  in_flight %d  queue %d  connections %d\n\n"
    (Option.value ~default:0.0 (Serve.Json.float_field "uptime_s" result))
    (Option.value ~default:0 (Serve.Json.int_field "in_flight" result))
    (Option.value ~default:0 (Serve.Json.int_field "queue_depth" result))
    (Option.value ~default:0 (Serve.Json.int_field "connections" result));
  Printf.printf "%-48s %12s\n" "gauge" "value";
  List.iter
    (fun f ->
       if Serve.Json.string_field "kind" f = Some "gauge" then
         List.iter
           (fun s ->
              match Serve.Json.int_field "value" s with
              | Some v ->
                Printf.printf "%-48s %12d\n" (fname f ^ json_label_suffix s) v
              | None -> ())
           (json_series f))
    fams;
  Printf.printf "\n%-48s %8s %10s %8s %8s\n" "histogram" "count" "mean"
    "~p50" "~p95";
  List.iter
    (fun f ->
       if Serve.Json.string_field "kind" f = Some "histogram" then
         List.iter
           (fun s ->
              let count =
                Option.value ~default:0 (Serve.Json.int_field "count" s)
              in
              let sum =
                Option.value ~default:0 (Serve.Json.int_field "sum" s)
              in
              let buckets = json_buckets s in
              Printf.printf "%-48s %8d %10.0f %8s %8s\n"
                (fname f ^ json_label_suffix s)
                count
                (if count = 0 then 0.0
                 else float_of_int sum /. float_of_int count)
                (approx_quantile buckets count 0.50)
                (approx_quantile buckets count 0.95))
           (json_series f))
    fams

let serve_ctl_cmd =
  let print_ok_or_fail reply =
    match reply with
    | Ok { Serve.Protocol.status = "ok"; result; _ } ->
      print_endline (Serve.Json.print result);
      0
    | Ok r ->
      Printf.eprintf "error: status %s%s\n" r.Serve.Protocol.status
        (match r.Serve.Protocol.message with
         | Some m -> ": " ^ m
         | None -> "");
      1
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  in
  (* Watch owns its connection: one connection is reused across
     refreshes, and a transport error (daemon restart, ECONNRESET, a
     torn frame) drops it and reconnects with exponential backoff
     instead of exiting.  A failed refresh does not consume a --count
     tick; with --count set we give up after enough consecutive
     failures so scripted runs cannot hang forever. *)
  let watch_loop ~connect ~interval ~count =
    let addr = Serve.Client.parse_addr connect in
    let conn = ref None in
    let backoff = ref 0.5 in
    let sleep s =
      try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    let drop () =
      (match !conn with Some c -> Serve.Client.close c | None -> ());
      conn := None
    in
    let rec go i failures =
      if count > 0 && failures >= 10 then begin
        Printf.eprintf
          "error: gave up on %s after %d consecutive failures\n" connect
          failures;
        1
      end
      else begin
        let retry msg =
          Printf.eprintf
            "bddmin serve-ctl: %s; retrying %s in %.1fs\n%!" msg connect
            !backoff;
          drop ();
          sleep !backoff;
          backoff := Float.min 8.0 (!backoff *. 2.0);
          go i (failures + 1)
        in
        match
          match !conn with
          | Some c -> Ok c
          | None ->
            (match Serve.Client.connect addr with
             | c -> conn := Some c; Ok c
             | exception Unix.Unix_error (e, _, _) ->
               Error (Unix.error_message e))
        with
        | Error msg -> retry ("cannot connect: " ^ msg)
        | Ok c ->
          (match Serve.Client.metrics c with
           | Ok { Serve.Protocol.status = "ok"; result; _ } ->
             backoff := 0.5;
             (* clear screen + home, then redraw *)
             print_string "\027[2J\027[H";
             watch_render result;
             flush stdout;
             if count > 0 && i + 1 >= count then 0
             else begin
               sleep interval;
               go (i + 1) 0
             end
           | Ok r ->
             (* the daemon answered — a bad status is not a transport
                failure, report it and stop *)
             Printf.eprintf "error: status %s\n" r.Serve.Protocol.status;
             1
           | Error msg -> retry ("connection lost (" ^ msg ^ ")"))
      end
    in
    Fun.protect ~finally:drop @@ fun () -> go 0 0
  in
  let run action connect interval count =
    match action with
    | `Watch -> watch_loop ~connect ~interval ~count
    | (`Ping | `Metrics | `Dump | `Shutdown) as action ->
      (match Serve.Client.connect (Serve.Client.parse_addr connect) with
       | exception Unix.Unix_error (e, _, _) ->
         Printf.eprintf "error: cannot connect to %s: %s\n" connect
           (Unix.error_message e);
         1
       | c ->
         Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
         (match action with
          | `Ping -> print_ok_or_fail (Serve.Client.ping c)
          | `Metrics -> print_ok_or_fail (Serve.Client.metrics c)
          | `Dump -> print_ok_or_fail (Serve.Client.dump c)
          | `Shutdown -> print_ok_or_fail (Serve.Client.shutdown c)))
  in
  let action =
    let actions =
      [ ("ping", `Ping); ("metrics", `Metrics); ("dump", `Dump);
        ("watch", `Watch); ("shutdown", `Shutdown) ]
    in
    Arg.(required & pos 0 (some (enum actions)) None
         & info [] ~docv:"ACTION"
             ~doc:"$(b,ping), $(b,metrics), $(b,dump) (print the \
                   server's flight recorder as JSON), $(b,watch) \
                   (refreshing terminal view of gauges and latency \
                   histograms) or $(b,shutdown).")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"Refresh period for $(b,watch) (default 2).")
  in
  let count =
    Arg.(value & opt int 0
         & info [ "count" ] ~docv:"N"
             ~doc:"Stop $(b,watch) after $(docv) refreshes (default: \
                   run until interrupted).")
  in
  Cmd.v
    (Cmd.info "serve-ctl"
       ~doc:"Ping, inspect, dump or watch a running serve daemon")
    Term.(const (fun () a b c d -> run a b c d)
          $ logs_term $ action $ connect_req_term $ interval $ count)

let main =
  Cmd.group
    (Cmd.info "bddmin" ~version:"1.0.0"
       ~doc:"Heuristic minimization of BDDs using don't cares (DAC'94)")
    [ minimize_cmd; lower_bound_cmd; equiv_cmd; reach_cmd; stats_cmd;
      tables_cmd; bench_cmd; profile_cmd; optimize_cmd; pla_cmd; benches_cmd;
      dot_cmd; serve_cmd; serve_bench_cmd; serve_ctl_cmd ]

let () = exit (Cmd.eval' main)
